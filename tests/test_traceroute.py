"""Tests for the Paris traceroute simulator and its artifacts."""

import pytest

from repro.measurement.traceroute import (
    _SILENCE_CACHE_WORLDS,
    TracerouteConfig,
    TracerouteEngine,
)
from repro.routing.bgp import BGPRouting
from repro.routing.forwarding import Forwarder


@pytest.fixture(scope="module")
def engine_setup(tiny_internet):
    forwarder = Forwarder(tiny_internet, BGPRouting(tiny_internet.graph))
    engine = TracerouteEngine(tiny_internet, forwarder, TracerouteConfig(seed=7))
    return tiny_internet, forwarder, engine


def _trace(setup, flow_key="t", dst_org="Comcast"):
    net, _fwd, engine = setup
    level3 = net.as_named("Level3")
    dst = net.as_named(dst_org)
    prefix = net.client_prefixes[dst.asn][0]
    return engine.trace(
        src_ip=net.client_prefixes[level3.asn][0].base + 999,
        src_asn=level3.asn,
        src_city="nyc",
        dst_ip=prefix.base + 77,
        dst_asn=dst.asn,
        dst_city=dst.home_cities[0],
        timestamp_s=100.0,
        flow_key=flow_key,
    )


class TestTraceStructure:
    def test_hops_sequential_ttls(self, engine_setup):
        record = _trace(engine_setup)
        assert [h.ttl for h in record.hops] == list(range(1, len(record.hops) + 1))

    def test_ground_truth_recorded(self, engine_setup):
        record = _trace(engine_setup)
        assert record.gt_as_path[0] == record.src_asn
        assert len(record.gt_crossed_links) == len(record.gt_as_path) - 1

    def test_rtts_roughly_cumulative(self, engine_setup):
        record = _trace(engine_setup)
        rtts = [h.rtt_ms for h in record.hops if h.rtt_ms is not None]
        assert rtts, "some hops must respond"
        # Jitter allows local inversions; the end must exceed the start
        # when the path leaves the metro.
        assert rtts[-1] >= rtts[0] - 3.0

    def test_destination_hop_is_dst_ip_when_reached(self, engine_setup):
        for index in range(20):
            record = _trace(engine_setup, flow_key=f"d{index}")
            if record.reached_destination:
                assert record.hops[-1].ip == record.dst_ip
                return
        pytest.fail("destination never responded in 20 traces")

    def test_router_hop_ips_strips_destination(self, engine_setup):
        for index in range(20):
            record = _trace(engine_setup, flow_key=f"s{index}")
            if record.reached_destination:
                assert record.dst_ip not in record.router_hop_ips()
                return
        pytest.fail("destination never responded in 20 traces")


class TestArtifacts:
    def test_silent_routers_are_stable(self, engine_setup):
        net, _fwd, engine = engine_setup
        # Same router silent across repeated identical traces.
        records = [_trace(engine_setup, flow_key="stable") for _ in range(5)]
        silent_patterns = []
        for record in records:
            silent_patterns.append(
                tuple(h.ttl for h in record.hops if h.ip is None)
            )
        # Persistent silence contributes the same TTLs every time; transient
        # loss adds occasional extras, so intersect instead of equality.
        persistent = set(silent_patterns[0])
        for pattern in silent_patterns[1:]:
            persistent &= set(pattern)
        for pattern in silent_patterns:
            assert persistent <= set(pattern)

    def test_nonresponse_rate_plausible(self, engine_setup):
        total = 0
        missing = 0
        for index in range(60):
            record = _trace(engine_setup, flow_key=f"r{index}")
            hops = record.hops[:-1] if record.reached_destination else record.hops
            total += len(hops)
            missing += sum(1 for h in hops if h.ip is None)
        rate = missing / total
        assert 0.01 < rate < 0.30

    def test_third_party_addresses_same_router(self, engine_setup):
        net, fwd, engine = engine_setup
        level3 = net.as_named("Level3")
        comcast = net.as_named("Comcast")
        flow = "tp"
        path = fwd.route_flow(level3.asn, "nyc", comcast.asn, comcast.home_cities[0], flow)
        by_router = {h.reply_ip: h.router_id for h in path.hops}
        record = engine.trace_along(
            path, src_ip=1, dst_ip=2, dst_city=comcast.home_cities[0], timestamp_s=0.0
        )
        for hop, true_hop in zip(record.hops, path.hops):
            if hop.ip is None:
                continue
            iface = net.fabric.interface(hop.ip)
            assert iface is not None
            assert iface.router_id == true_hop.router_id

    def test_silence_cache_bounded_across_worlds(self, engine_setup):
        """Regression: the class-level silent-router verdict cache must
        not grow one whole-world dict per seed forever (multi-seed
        fuzzing and benches construct hundreds of engine configs)."""
        net, fwd, _engine = engine_setup
        saved = dict(TracerouteEngine._silence_verdicts)
        try:
            TracerouteEngine._silence_verdicts.clear()
            for seed in range(_SILENCE_CACHE_WORLDS * 3):
                TracerouteEngine(net, fwd, TracerouteConfig(seed=seed))
            assert len(TracerouteEngine._silence_verdicts) == _SILENCE_CACHE_WORLDS
        finally:
            TracerouteEngine._silence_verdicts.clear()
            TracerouteEngine._silence_verdicts.update(saved)

    def test_silence_cache_evicts_least_recently_used(self, engine_setup):
        net, fwd, _engine = engine_setup
        saved = dict(TracerouteEngine._silence_verdicts)
        try:
            TracerouteEngine._silence_verdicts.clear()
            for seed in range(_SILENCE_CACHE_WORLDS):
                TracerouteEngine(net, fwd, TracerouteConfig(seed=seed))
            # Touch world 0 (a hit moves it to MRU), then insert a new
            # world: world 1 — now the oldest untouched — is the victim.
            TracerouteEngine(net, fwd, TracerouteConfig(seed=0))
            TracerouteEngine(net, fwd, TracerouteConfig(seed=900))
            keys = {key[0] for key in TracerouteEngine._silence_verdicts}
            assert 0 in keys and 900 in keys
            assert 1 not in keys
        finally:
            TracerouteEngine._silence_verdicts.clear()
            TracerouteEngine._silence_verdicts.update(saved)

    def test_eviction_only_costs_rederivation(self, engine_setup):
        """Verdicts are pure (seed, router) facts: an engine whose world
        was evicted re-derives exactly the same answers."""
        net, fwd, _engine = engine_setup
        saved = dict(TracerouteEngine._silence_verdicts)
        try:
            TracerouteEngine._silence_verdicts.clear()
            first = TracerouteEngine(net, fwd, TracerouteConfig(seed=3))
            routers = sorted(
                {iface.router_id for iface in net.fabric.interfaces()[:40]}
            )
            before = {r: first._router_is_silent(r) for r in routers}
            for seed in range(100, 100 + _SILENCE_CACHE_WORLDS + 1):
                TracerouteEngine(net, fwd, TracerouteConfig(seed=seed))
            assert (3, 0.05) not in TracerouteEngine._silence_verdicts
            rebuilt = TracerouteEngine(net, fwd, TracerouteConfig(seed=3))
            assert {r: rebuilt._router_is_silent(r) for r in routers} == before
        finally:
            TracerouteEngine._silence_verdicts.clear()
            TracerouteEngine._silence_verdicts.update(saved)

    def test_unroutable_returns_none(self, engine_setup):
        net, _fwd, engine = engine_setup
        # Find two peer-only stubs with no mutual reachability: craft via
        # unknown dst ASN path: use an AS pair guaranteed reachable —
        # instead verify the engine passes through forwarder's None by
        # probing an AS with no fabric (impossible here), so assert a
        # normal call returns a record instead.
        record = _trace(engine_setup, flow_key="ok")
        assert record is not None
