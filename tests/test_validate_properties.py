"""Generative fuzzing: random worlds satisfy the contracts; the batch
engine matches the scalar engine on arbitrary request mixes.

Uses the strategies in :mod:`repro.validate.strategies`. Example counts
stay modest because each example builds a world; the ``ci`` hypothesis
profile (``HYPOTHESIS_PROFILE=ci``) derandomizes them for reproducible
CI runs.
"""

from __future__ import annotations

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.pipeline import build_study, clear_study_cache  # noqa: E402
from repro.validate import validate_internet, validate_world  # noqa: E402
from repro.validate.strategies import (  # noqa: E402
    HAVE_HYPOTHESIS,
    internet_configs,
    observe_requests,
    study_configs,
)


@pytest.fixture(scope="module")
def routed_paths(small_study):
    """A few dozen real forwarding paths for request strategies."""
    rng = random.Random(31)
    clients = small_study.population.all_clients()
    servers = small_study.mlab.servers() + small_study.speedtest.servers()
    paths = []
    attempt = 0
    while len(paths) < 30 and attempt < 300:
        attempt += 1
        client, server = rng.choice(clients), rng.choice(servers)
        path = small_study.forwarder.route_flow(
            client.asn, client.city, server.asn, server.city, ("fuzz", attempt)
        )
        if path is not None:
            paths.append(path)
    assert len(paths) == 30
    return paths


def test_strategies_module_reports_hypothesis_available():
    assert HAVE_HYPOTHESIS


class TestRandomWorldsSatisfyContracts:
    @settings(max_examples=10, deadline=None)
    @given(config=internet_configs(max_stubs=25))
    def test_generated_internet_passes_world_contracts(self, config):
        from repro.topology.generator import generate_internet

        internet = generate_internet(config)
        report = validate_internet(internet, sample_pairs=25)
        assert report.ok, f"seed={config.seed}\n{report.render()}"

    @settings(max_examples=4, deadline=None)
    @given(config=study_configs())
    def test_generated_study_passes_fast_contracts(self, config):
        study = build_study(config)
        try:
            report = validate_world(study, include_slow=False, sample_pairs=25)
            assert report.ok, f"config={config}\n{report.render()}"
        finally:
            clear_study_cache()  # fuzzed studies must not accumulate


class TestBatchScalarEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data(), reseed=st.integers(min_value=0, max_value=2**16))
    def test_observe_batch_equals_sequential_observe(
        self, small_study, routed_paths, data, reseed
    ):
        requests = data.draw(observe_requests(routed_paths))
        scalar_model = small_study.tcp.reseeded(reseed)
        batch_model = small_study.tcp.reseeded(reseed)

        scalar = [scalar_model.observe_request(r) for r in requests]
        batched = batch_model.observe_batch(requests)

        assert batched == scalar
        assert [repr(o) for o in batched] == [repr(o) for o in scalar]
        # The noise streams must land in the same state too.
        assert scalar_model._rng.random() == batch_model._rng.random()

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_split_batches_equal_one_batch(self, small_study, routed_paths, data):
        requests = data.draw(observe_requests(routed_paths, max_size=10))
        cut = data.draw(st.integers(min_value=0, max_value=len(requests)))

        one_shot = small_study.tcp.reseeded(5).observe_batch(requests)
        split_model = small_study.tcp.reseeded(5)
        split = (split_model.observe_batch(requests[:cut])
                 + split_model.observe_batch(requests[cut:]))
        assert split == one_shot
