"""World contracts: healthy worlds pass; mutated worlds fail by name.

The acceptance bar for the validation subsystem: a deliberately broken
world (a valley-violating route, a prefix announced by an unknown AS, an
interconnect that disagrees with the router fabric, a coverage numerator
outside its denominator) must surface as a *named* contract failure —
never a crash, never a silent pass.
"""

from __future__ import annotations

import pytest

from repro.core.coverage import BorderSet, CoverageReport
from repro.core.pipeline import (
    StudyConfig,
    build_study,
    clear_study_cache,
    set_inline_validation,
)
from repro.platforms.ark import ArkVP
from repro.routing.bgp import BGPRouting, valley_free_violations
from repro.topology.addressing import Prefix
from repro.topology.asgraph import AS, ASGraph, ASRole, Relationship
from repro.topology.generator import InternetConfig, generate_internet
from repro.topology.routers import InterconnectKind
from repro.validate import (
    CONTRACTS,
    ContractViolation,
    check_coverage_report,
    validate_internet,
    validate_world,
)
from repro.validate.contracts import WorldContext, _run_contract

MUTABLE_CONFIG = InternetConfig(seed=11, n_stub=10, n_transit=3)


@pytest.fixture
def mutable_internet():
    """A fresh, private world per test — safe to vandalize."""
    return generate_internet(MUTABLE_CONFIG)


def _result(report, name):
    matches = [r for r in report.results if r.name == name]
    assert len(matches) == 1, f"{name} not reported exactly once"
    return matches[0]


class TestHealthyWorlds:
    def test_tiny_internet_satisfies_all_contracts(self, tiny_internet):
        report = validate_internet(tiny_internet)
        assert report.ok, report.render()
        names = [r.name for r in report.results]
        assert names == list(CONTRACTS)

    def test_internet_only_run_reports_study_contracts_as_skipped(self, tiny_internet):
        report = validate_internet(tiny_internet)
        assert _result(report, "coverage.numerator_subset").skipped
        assert _result(report, "study.seed_wiring").skipped

    def test_small_study_satisfies_all_contracts(self, small_study):
        report = validate_world(
            small_study, coverage_prefixes=25, coverage_alexa=25
        )
        assert report.ok, report.render()
        assert not any(r.skipped for r in report.results)

    def test_report_render_names_every_contract(self, tiny_internet):
        rendered = validate_internet(tiny_internet).render()
        for name in ("routing.valley_free", "topology.prefix_table_consistency"):
            assert name in rendered


class TestValleyFreeChecker:
    def _graph(self):
        graph = ASGraph()
        for asn in (1, 2, 3, 4):
            graph.add_as(AS(asn, f"AS{asn}", ASRole.TRANSIT))
        # 1 is provider of 2 and 3; 2-3 peer; 3 is provider of 4.
        graph.add_edge(1, 2, Relationship.CUSTOMER)
        graph.add_edge(1, 3, Relationship.CUSTOMER)
        graph.add_edge(2, 3, Relationship.PEER)
        graph.add_edge(3, 4, Relationship.CUSTOMER)
        return graph

    def test_valid_shapes_pass(self):
        graph = self._graph()
        assert valley_free_violations(graph, [2, 1, 3, 4]) == []
        assert valley_free_violations(graph, [2, 3, 4]) == []  # peer then down
        assert valley_free_violations(graph, [4, 3, 2]) == []  # up then peer

    def test_valley_is_flagged(self):
        graph = self._graph()
        # Down to the customer, then back up: a classic valley.
        violations = valley_free_violations(graph, [1, 3, 4, 3])
        assert violations  # repeats + valley
        violations = valley_free_violations(graph, [1, 2, 3, 1])
        assert any("valley" in v for v in violations)

    def test_missing_adjacency_is_flagged(self):
        violations = valley_free_violations(self._graph(), [2, 4])
        assert any("not an adjacency" in v for v in violations)

    def test_contract_fails_on_valleyed_routing(self, mutable_internet):
        """A routing layer that fabricates valleyed paths is caught."""
        graph = mutable_internet.graph
        access = [a.asn for a in graph.ases_by_role(ASRole.ACCESS)]
        tier1 = [a.asn for a in graph.ases_by_role(ASRole.TIER1)]

        class ValleyRouting(BGPRouting):
            def as_path(self, src, dst):
                path = super().as_path(src, dst)
                if path is not None and len(path) >= 2:
                    # Bounce through the far end's first hop again: loop +
                    # an uphill edge after the path turned over.
                    return path + [path[-2]]
                return path

        report = validate_internet(mutable_internet, routing=ValleyRouting(graph))
        assert access and tier1  # the contract always samples these pairs
        result = _result(report, "routing.valley_free")
        assert not result.passed
        assert result.violations


class TestPrefixTableContract:
    def test_unknown_asn_prefix_fails_by_name(self, mutable_internet):
        mutable_internet.prefix_table.insert(
            Prefix(base=0xC0000000, length=24, asn=999_999)
        )
        report = validate_internet(mutable_internet)
        result = _result(report, "topology.prefix_table_consistency")
        assert not result.passed
        assert any("unknown AS999999" in v for v in result.violations)

    def test_misattributed_client_prefix_fails(self, mutable_internet):
        asn, prefixes = next(iter(mutable_internet.client_prefixes.items()))
        hijacker = next(
            a for a in mutable_internet.graph.asns() if a != asn
        )
        stolen = Prefix(prefixes[0].base, prefixes[0].length, hijacker)
        mutable_internet.prefix_table.insert(stolen)  # replaces the original
        report = validate_internet(mutable_internet)
        result = _result(report, "topology.prefix_table_consistency")
        assert not result.passed


class TestInterconnectFabricContract:
    def test_foreign_router_interconnect_fails(self, mutable_internet):
        fabric = mutable_internet.fabric
        link = fabric.interconnects()[0]
        # A router from a third AS in another city, wired into the link.
        foreign = next(
            r for r in fabric.routers_of_as(link.other_asn(link.a_asn))
            if r.city_code != link.city_code
        )
        fabric.add_interconnect(
            a_asn=link.a_asn,
            b_asn=link.b_asn,
            a_router_id=foreign.router_id,
            b_router_id=link.b_router_id,
            a_ip=link.a_ip,  # reuses another link's interface: also wrong
            b_ip=link.b_ip,
            city_code=link.city_code,
            kind=InterconnectKind.PRIVATE,
            numbered_from_asn=link.a_asn,
        )
        report = validate_internet(mutable_internet)
        result = _result(report, "topology.interconnect_fabric_agreement")
        assert not result.passed
        assert any("belongs to" in v for v in result.violations)
        assert any("sits in" in v for v in result.violations)

    def test_nonendpoint_numbering_fails(self, mutable_internet):
        fabric = mutable_internet.fabric
        link = fabric.interconnects()[0]
        fabric.add_interconnect(
            a_asn=link.a_asn,
            b_asn=link.b_asn,
            a_router_id=link.a_router_id,
            b_router_id=link.b_router_id,
            a_ip=link.a_ip,
            b_ip=link.b_ip,
            city_code=link.city_code,
            kind=InterconnectKind.PRIVATE,
            numbered_from_asn=424242,
        )
        report = validate_internet(mutable_internet)
        result = _result(report, "topology.interconnect_fabric_agreement")
        assert not result.passed
        assert any("numbered from non-endpoint" in v for v in result.violations)


class TestCoverageContract:
    def _vp(self):
        return ArkVP(code="X", label="X", org_name="X", asn=7922, ip=1,
                     city="nyc")

    def test_consistent_report_passes(self):
        discovered = BorderSet("bdrmap", frozenset({10, 20}),
                               frozenset({(1, 10), (2, 20)}))
        reachable = {
            "mlab": BorderSet("mlab", frozenset({10}), frozenset({(1, 10)})),
        }
        report = CoverageReport(
            vp=self._vp(),
            discovered=discovered,
            reachable=reachable,
            relationships={10: Relationship.PEER, 20: Relationship.CUSTOMER},
        )
        assert check_coverage_report(report) == []

    def test_numerator_outside_denominator_universe_fails(self):
        """An org covered by a platform but absent from the relationship
        universe: the numerator escaped its denominator's domain."""
        discovered = BorderSet("bdrmap", frozenset({10}), frozenset({(1, 10)}))
        reachable = {
            "mlab": BorderSet("mlab", frozenset({10, 99}), frozenset({(1, 10)})),
        }
        report = CoverageReport(
            vp=self._vp(),
            discovered=discovered,
            reachable=reachable,
            relationships={10: Relationship.PEER},
        )
        violations = check_coverage_report(report)
        assert any("outside the relationship universe" in v for v in violations)

    def test_router_level_escaping_as_level_fails(self):
        discovered = BorderSet("bdrmap", frozenset({10}),
                               frozenset({(1, 10), (2, 77)}))
        report = CoverageReport(
            vp=self._vp(),
            discovered=discovered,
            reachable={},
            relationships={10: Relationship.PEER, 77: None},
        )
        violations = check_coverage_report(report)
        assert any("outside its own AS-level set" in v for v in violations)


class TestRegistryRobustness:
    def test_crashing_contract_is_a_named_failure(self, tiny_internet):
        from repro.validate.contracts import Contract

        def explode(ctx):
            raise RuntimeError("boom")

        entry = Contract(name="test.explosive", description="crash test",
                         fn=explode)
        ctx = WorldContext(
            internet=tiny_internet, routing=BGPRouting(tiny_internet.graph)
        )
        result = _run_contract(entry, ctx)
        assert not result.passed
        assert "RuntimeError" in result.violations[0]

    def test_validate_metrics_are_recorded(self, tiny_internet):
        from repro.obs import metrics

        before = metrics.counter("validate.contracts_run").value
        validate_internet(tiny_internet)
        assert metrics.counter("validate.contracts_run").value > before


class TestInlineValidation:
    def test_build_study_runs_fast_contracts_when_enabled(self):
        config = StudyConfig(seed=13, scale=0.02, mlab_server_count=10,
                             speedtest_server_count=20, clients_per_million=4.0)
        clear_study_cache()
        set_inline_validation(True)
        try:
            study = build_study(config)  # must not raise on a healthy world
            assert study.config is config
        finally:
            set_inline_validation(False)
            clear_study_cache()

    def test_contract_violation_carries_the_report(self):
        from repro.validate.base import CheckResult, ValidationReport

        report = ValidationReport(results=[CheckResult(
            name="routing.valley_free", kind="contract", passed=False,
            violations=("synthetic",),
        )])
        exc = ContractViolation(report)
        assert "routing.valley_free" in str(exc)
        assert exc.report is report
