"""Tests for topology-aware server selection (§7 recommendation)."""

import random

import pytest

from repro.platforms.campaign import CampaignConfig


class TestDirectSelection:
    def test_direct_host_is_interconnected(self, small_study):
        internet = small_study.internet
        windstream = internet.as_named("Windstream")
        client = small_study.population.clients_of("Windstream")[0]
        server = small_study.mlab.select_server_direct(
            client.city, client.asn, random.Random(1)
        )
        host_siblings = internet.orgs.siblings(server.asn)
        client_siblings = internet.orgs.siblings(windstream.asn)
        assert any(
            internet.graph.relationship(h, c) is not None
            for h in host_siblings
            for c in client_siblings
        )

    def test_direct_policy_raises_one_hop_fraction(self, small_study):
        def one_hop_fraction(policy):
            result = small_study.run_campaign(
                CampaignConfig(
                    seed=31, days=5, total_tests=800,
                    orgs=("Windstream", "Charter"), selection_policy=policy,
                    burst_prob=0.0,
                )
            )
            one_hop = 0
            for record in result.ndt_records:
                orgs = []
                for link_id in record.gt_crossed_links:
                    link = small_study.internet.fabric.interconnect(link_id)
                    for asn in (link.a_asn, link.b_asn):
                        label = small_study.org_label(asn)
                        if not orgs or orgs[-1] != label:
                            orgs.append(label)
                if len(dict.fromkeys(orgs)) <= 2:
                    one_hop += 1
            return one_hop / len(result.ndt_records)

        assert one_hop_fraction("direct") > one_hop_fraction("nearest")

    def test_regional_policy_spreads_sites(self, small_study):
        result = small_study.run_campaign(
            CampaignConfig(
                seed=32, days=5, total_tests=500,
                orgs=("Comcast",), selection_policy="regional", burst_prob=0.0,
            )
        )
        servers = {r.server_id for r in result.ndt_records}
        nearest = small_study.run_campaign(
            CampaignConfig(
                seed=32, days=5, total_tests=500,
                orgs=("Comcast",), selection_policy="nearest", burst_prob=0.0,
            )
        )
        nearest_servers = {r.server_id for r in nearest.ndt_records}
        assert len(servers) >= len(nearest_servers)
