"""Tests for bdrmap: border enumeration from a vantage point."""

import pytest

from repro.inference.alias import AliasResolver
from repro.inference.bdrmap import collect_bdrmap_traces, org_relationship, run_bdrmap
from repro.measurement.traceroute import TracerouteConfig, TracerouteEngine
from repro.platforms.ark import make_ark_vps
from repro.routing.bgp import BGPRouting
from repro.routing.forwarding import Forwarder
from repro.topology.asgraph import Relationship


@pytest.fixture(scope="module")
def bdrmap_run(tiny_internet):
    forwarder = Forwarder(tiny_internet, BGPRouting(tiny_internet.graph))
    engine = TracerouteEngine(tiny_internet, forwarder, TracerouteConfig(seed=7))
    from repro.inference.borders import OriginOracle

    oracle = OriginOracle(
        tiny_internet.prefix_table, tiny_internet.orgs, tiny_internet.ixps.prefixes()
    )
    vp = next(v for v in make_ark_vps(tiny_internet) if v.label == "COM-1")
    traces = collect_bdrmap_traces(tiny_internet, vp, engine)
    result = run_bdrmap(tiny_internet, vp, traces, oracle)
    return tiny_internet, vp, traces, result


class TestCollection:
    def test_probes_every_routed_prefix(self, bdrmap_run):
        internet, _vp, traces, _result = bdrmap_run
        routable = [
            p for p in internet.routed_prefixes() if p.asn in internet.graph
        ]
        assert len(traces) == len(routable)

    def test_max_prefixes_cap(self, tiny_internet):
        forwarder = Forwarder(tiny_internet, BGPRouting(tiny_internet.graph))
        engine = TracerouteEngine(tiny_internet, forwarder, TracerouteConfig(seed=7))
        vp = make_ark_vps(tiny_internet)[0]
        traces = collect_bdrmap_traces(tiny_internet, vp, engine, max_prefixes=10)
        assert len(traces) <= 10


class TestInference:
    def test_neighbors_mostly_correct(self, bdrmap_run):
        internet, vp, _traces, result = bdrmap_run
        vp_org = internet.orgs.canonical_asn(vp.asn)
        truth = set()
        for link in internet.interconnects_of_org(vp.asn):
            for asn in (link.a_asn, link.b_asn):
                canonical = internet.orgs.canonical_asn(asn)
                if canonical != vp_org:
                    truth.add(canonical)
        inferred = result.neighbor_asns()
        tp = len(inferred & truth)
        assert tp / len(inferred) > 0.75
        assert tp / len(truth) > 0.6

    def test_router_level_at_least_as_level(self, bdrmap_run):
        _net, _vp, _traces, result = bdrmap_run
        assert result.router_level_count() >= result.as_level_count()

    def test_relationship_filters(self, bdrmap_run):
        _net, _vp, _traces, result = bdrmap_run
        total = result.as_level_count()
        by_rel = sum(
            result.as_level_count(rel)
            for rel in (Relationship.CUSTOMER, Relationship.PROVIDER, Relationship.PEER)
        )
        assert by_rel <= total

    def test_never_reports_own_org(self, bdrmap_run):
        internet, vp, _traces, result = bdrmap_run
        assert internet.orgs.canonical_asn(vp.asn) not in result.neighbor_asns()


class TestOrgRelationship:
    def test_direct_edge(self, tiny_internet):
        comcast = tiny_internet.as_named("Comcast")
        level3 = tiny_internet.as_named("Level3")
        rel = org_relationship(tiny_internet, comcast.asn, level3.asn)
        assert rel is not None

    def test_unrelated_orgs(self, tiny_internet):
        from repro.topology.asgraph import ASRole

        stubs = tiny_internet.graph.ases_by_role(ASRole.STUB)
        # Find two stubs with no relationship.
        for a in stubs[:10]:
            for b in stubs[10:20]:
                if tiny_internet.graph.relationship(a.asn, b.asn) is None:
                    assert org_relationship(tiny_internet, a.asn, b.asn) is None
                    return
        pytest.skip("no unrelated stub pair in tiny world")

    def test_customer_priority(self, tiny_internet):
        # An org that sells transit to any sibling of the neighbour org is
        # annotated as its provider (CUSTOMER from the org's view).
        att = tiny_internet.as_named("ATT")
        customer_asn = tiny_internet.graph.customers(att.asn)
        if not customer_asn:
            pytest.skip("ATT has no customers in tiny world")
        rel = org_relationship(tiny_internet, att.asn, customer_asn[0])
        assert rel is Relationship.CUSTOMER
