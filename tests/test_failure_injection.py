"""Failure injection: the pipeline must degrade gracefully, not crash.

Each test forces a pathological condition — total traceroute silence,
unroutable destinations, empty corpora, a world with no congestion at all
— and asserts the analysis layer returns empty/NaN results instead of
raising or fabricating findings.
"""

import math

import pytest

from repro.core.congestion import classify_series, diurnal_series
from repro.core.matching import match_ndt_to_traceroutes
from repro.core.tomography import (
    aggregate_path_observations,
    binary_tomography,
    simplified_as_tomography,
)
from repro.inference.mapit import MapIt, MapItConfig
from repro.inference.borders import OriginOracle
from repro.measurement.traceroute import TracerouteConfig, TracerouteEngine
from repro.routing.bgp import BGPRouting
from repro.routing.forwarding import Forwarder
from repro.topology.addressing import PrefixTable
from repro.topology.asgraph import AS, ASGraph, ASRole, Relationship


class TestTotalSilence:
    def test_mapit_on_fully_silent_traces(self, tiny_internet):
        forwarder = Forwarder(tiny_internet, BGPRouting(tiny_internet.graph))
        engine = TracerouteEngine(
            tiny_internet,
            forwarder,
            TracerouteConfig(seed=7, silent_router_fraction=1.0,
                             destination_responds_prob=0.0),
        )
        level3 = tiny_internet.as_named("Level3")
        cox = tiny_internet.as_named("Cox")
        traces = []
        for index in range(10):
            record = engine.trace(
                src_ip=1, src_asn=level3.asn, src_city="nyc",
                dst_ip=2, dst_asn=cox.asn, dst_city=cox.home_cities[0],
                timestamp_s=0.0, flow_key=index,
            )
            traces.append(record.router_hop_ips())
        assert all(all(ip is None for ip in trace) for trace in traces)
        oracle = OriginOracle(
            tiny_internet.prefix_table, tiny_internet.orgs, tiny_internet.ixps.prefixes()
        )
        result = MapIt(oracle, tiny_internet.graph, MapItConfig()).infer(traces)
        assert result.links == []
        assert result.flips == 0


class TestEmptyInputs:
    def test_mapit_empty_corpus(self, tiny_internet):
        oracle = OriginOracle(tiny_internet.prefix_table)
        result = MapIt(oracle).infer([])
        assert result.links == [] and result.ownership == {}

    def test_matching_no_traces(self):
        report = match_ndt_to_traceroutes([], [])
        assert report.matched == {} and report.matched_fraction == 0.0

    def test_classify_empty_series(self):
        verdict = classify_series(diurnal_series([]))
        assert not verdict.congested
        assert math.isnan(verdict.relative_drop)

    def test_binary_tomography_no_bad_paths(self):
        assert binary_tomography([((1, 2), False)]) == set()

    def test_aggregation_empty(self):
        assert aggregate_path_observations([]) == []

    def test_simplified_tomography_empty_pairs(self):
        result = simplified_as_tomography({})
        assert result.pairs == []


class TestUnroutableWorlds:
    def _island_graph(self):
        graph = ASGraph()
        for asn in (1, 2, 3):
            graph.add_as(AS(asn, f"AS{asn}", ASRole.STUB))
        graph.add_edge(1, 2, Relationship.PEER)
        # AS3 is an island.
        return graph

    def test_bgp_unreachable_island(self):
        routing = BGPRouting(self._island_graph())
        assert routing.as_path(1, 3) is None
        assert routing.as_path(3, 1) is None

    def test_no_congestion_world_yields_no_verdicts(self, tiny_internet):
        """With zero provisioned congestion, no aggregate should trip a
        reasonable threshold (the pipeline must not hallucinate)."""
        from repro.net.link import ProvisioningConfig, provision_links
        from repro.net.tcp import TCPModel
        from repro.platforms.campaign import CampaignConfig, run_ndt_campaign
        from repro.platforms.clients import ClientPopulation, PopulationConfig
        from repro.platforms.mlab import MLabConfig, MLabPlatform

        links = provision_links(tiny_internet, ProvisioningConfig(seed=7, directives=()))
        assert not links.congested_link_ids()
        population = ClientPopulation(
            tiny_internet, PopulationConfig(seed=7, clients_per_million=8)
        )
        platform = MLabPlatform(tiny_internet, MLabConfig(seed=7, server_count=30))
        forwarder = Forwarder(tiny_internet, BGPRouting(tiny_internet.graph))
        result = run_ndt_campaign(
            tiny_internet, population, platform, forwarder,
            TCPModel(links, seed=7),
            CampaignConfig(seed=7, days=14, total_tests=2500, orgs=("ATT",)),
        )
        verdict = classify_series(diurnal_series(result.ndt_records), threshold=0.5)
        assert not verdict.congested


class TestDegenerateLookups:
    def test_oracle_unknown_address(self):
        oracle = OriginOracle(PrefixTable())
        assert oracle.origin(123456) is None
        assert oracle.origin_raw(123456) is None
        assert not oracle.is_ixp(123456)

    def test_forwarder_same_host(self, tiny_internet):
        forwarder = Forwarder(tiny_internet, BGPRouting(tiny_internet.graph))
        level3 = tiny_internet.as_named("Level3")
        path = forwarder.route_flow(level3.asn, "nyc", level3.asn, "nyc", "k")
        assert path is not None and path.crossed_links == ()


class TestBatchPathDegradation:
    """The PR-3 batch engine under the same pathological conditions."""

    def test_observe_batch_empty_request_list(self, tiny_internet):
        from repro.net.link import ProvisioningConfig, provision_links
        from repro.net.tcp import TCPModel

        links = provision_links(tiny_internet,
                                ProvisioningConfig(seed=7, directives=()))
        model = TCPModel(links, seed=7)
        assert model.observe_batch([]) == []
        # An empty batch must not advance the noise stream either.
        untouched = TCPModel(links, seed=7)
        assert model._rng.random() == untouched._rng.random()

    def test_campaign_survives_fully_silent_traceroutes(self, tiny_internet):
        """A world where every router drops probes still produces a full
        NDT campaign via the batched engine; only the traces go dark."""
        from repro.measurement.traceroute import TracerouteEngine
        from repro.net.link import ProvisioningConfig, provision_links
        from repro.net.tcp import TCPModel
        from repro.platforms.campaign import CampaignConfig, run_ndt_campaign
        from repro.platforms.clients import ClientPopulation, PopulationConfig
        from repro.platforms.mlab import MLabConfig, MLabPlatform

        links = provision_links(tiny_internet,
                                ProvisioningConfig(seed=7, directives=()))
        population = ClientPopulation(
            tiny_internet, PopulationConfig(seed=7, clients_per_million=8)
        )
        platform = MLabPlatform(tiny_internet, MLabConfig(seed=7, server_count=30))
        forwarder = Forwarder(tiny_internet, BGPRouting(tiny_internet.graph))
        silent = TracerouteEngine(
            tiny_internet,
            forwarder,
            TracerouteConfig(seed=7, silent_router_fraction=1.0,
                             destination_responds_prob=0.0),
        )
        result = run_ndt_campaign(
            tiny_internet, population, platform, forwarder,
            TCPModel(links, seed=7),
            CampaignConfig(seed=7, days=3, total_tests=400),
            traceroute_engine=silent,
        )
        assert len(result.ndt_records) == 400
        assert result.traceroute_records
        for trace in result.traceroute_records:
            assert all(ip is None for ip in trace.router_hop_ips())
        # The downstream analysis sees nothing rather than crashing.
        oracle = OriginOracle(tiny_internet.prefix_table, tiny_internet.orgs,
                              tiny_internet.ixps.prefixes())
        inferred = MapIt(oracle, tiny_internet.graph, MapItConfig()).infer(
            [t.router_hop_ips() for t in result.traceroute_records]
        )
        assert inferred.links == []

    def test_link_tables_outside_campaign_window_match_scalar(self, tiny_internet):
        """Hours before 0 and past the campaign's last day must hit the
        same diurnal cells as the scalar path (both are 24h-periodic)."""
        from repro.net.batch import LinkTableSet
        from repro.net.link import ProvisioningConfig, provision_links

        links = provision_links(tiny_internet,
                                ProvisioningConfig(seed=7, directives=()))
        tables = LinkTableSet(links)
        link_ids = list(links.param_map())[:20]
        for hour in (-30.0, -0.25, 24.0, 47.5, 24 * 28 + 3.0, 1e4):
            for link_id in link_ids:
                cell = tables.cell(link_id, hour)
                params = links.params(link_id)
                assert cell == (
                    params.loss_rate(hour),
                    params.queue_delay_ms(hour),
                    params.utilization(hour) >= 1.0,
                    params.available_bps(hour),
                )
                assert cell == tables.cell(link_id, hour % 24.0)
