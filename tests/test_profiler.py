"""The sampling profiler: collapsed output, span attribution, summaries.

The profiler's contract is observational: it reads stacks, never
injects into the measured thread, and its artifacts (folded stacks,
span CPU, summary) are derived purely from what it sampled.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import trace
from repro.obs.profiler import (
    FOLDED_FILENAME,
    SPAN_SAMPLES_KEY,
    SamplingProfiler,
    default_hz,
)


@pytest.fixture(autouse=True)
def _clean_trace():
    trace.set_enabled(False)
    trace.reset()
    yield
    trace.set_enabled(False)
    trace.reset()


def _burn(duration_s: float) -> None:
    deadline = time.monotonic() + duration_s
    while time.monotonic() < deadline:
        sum(range(200))


class TestDefaults:
    def test_default_hz_scales_with_cores(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_PROFILE_HZ", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert default_hz() == 100.0
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert default_hz() == 25.0
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_hz() == 100.0

    def test_env_override_and_clamp(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        monkeypatch.setenv("REPRO_PROFILE_HZ", "5000")
        assert default_hz() == 1000.0
        monkeypatch.setenv("REPRO_PROFILE_HZ", "0")
        assert default_hz() == 1.0
        monkeypatch.setenv("REPRO_PROFILE_HZ", "junk")
        assert default_hz() == 25.0  # unparsable falls back to machine default


class TestSampling:
    def test_collapsed_stacks_from_a_busy_thread(self):
        profiler = SamplingProfiler(hz=500)
        profiler.start()
        _burn(0.3)
        profiler.stop()
        assert profiler.samples > 0
        lines = profiler.collapsed()
        assert lines, "no stacks collected"
        # Folded grammar: "frame;frame;... count", root first.
        frames, count = lines[0].rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in frames or ":" in frames
        assert any("_burn" in line for line in lines)

    def test_write_folded_creates_file(self, tmp_path):
        profiler = SamplingProfiler(hz=500)
        profiler.start()
        _burn(0.1)
        profiler.stop()
        path = profiler.write_folded(tmp_path / "deep")
        assert path.name == FOLDED_FILENAME
        assert path.read_text().strip()

    def test_span_attribution_and_annotate(self):
        trace.set_enabled(True)
        profiler = SamplingProfiler(hz=500)
        profiler.start()
        with trace.span("hot-phase"):
            _burn(0.3)
        profiler.stop()
        tree = trace.tree()
        meta = tree[0]["meta"]
        assert meta.get(SPAN_SAMPLES_KEY, 0) > 0
        profiler.annotate(tree)
        assert meta["cpu_s"] == pytest.approx(meta[SPAN_SAMPLES_KEY] / profiler.hz)
        assert profiler.span_cpu().get("hot-phase", 0) > 0

    def test_annotate_leaves_unprofiled_spans_alone(self):
        profiler = SamplingProfiler(hz=100)
        tree = [{"name": "idle", "meta": {}, "children": []}]
        profiler.annotate(tree)
        assert "cpu_s" not in tree[0]["meta"]

    def test_missed_samples_counted_for_dead_thread(self):
        worker = threading.Thread(target=lambda: None)
        worker.start()
        worker.join()
        profiler = SamplingProfiler(hz=200)
        profiler.start(thread_id=worker.ident)
        time.sleep(0.05)
        profiler.stop()
        assert profiler.samples == 0
        assert profiler.missed > 0

    def test_summary_shape(self):
        profiler = SamplingProfiler(hz=500)
        profiler.start()
        _burn(0.2)
        profiler.stop()
        summary = profiler.summary()
        assert summary["hz"] == 500
        assert summary["samples"] == profiler.samples
        assert summary["wall_s"] > 0
        assert summary["distinct_stacks"] == len(profiler.collapsed())
        assert summary["top_frames"], "no leaf frames ranked"
        top = summary["top_frames"][0]
        assert top["cpu_s"] == pytest.approx(top["samples"] / 500)

    def test_start_is_idempotent_and_stop_twice_is_safe(self):
        profiler = SamplingProfiler(hz=100)
        profiler.start()
        assert profiler.start() is profiler
        profiler.stop()
        profiler.stop()
        assert not profiler.running
