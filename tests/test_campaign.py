"""Tests for the crowdsourced NDT campaign generator."""

import pytest

from repro.platforms.campaign import CampaignConfig


@pytest.fixture(scope="module")
def campaign_result(small_study):
    return small_study.run_campaign(
        CampaignConfig(seed=3, days=7, total_tests=2000, orgs=("ATT", "Comcast"))
    )


class TestCampaign:
    def test_exact_test_count(self, campaign_result):
        assert len(campaign_result.ndt_records) == 2000

    def test_only_requested_orgs(self, campaign_result):
        orgs = {r.gt_client_org for r in campaign_result.ndt_records}
        assert orgs == {"ATT", "Comcast"}

    def test_timestamps_ordered_within_hours(self, campaign_result):
        stamps = [r.timestamp_s for r in campaign_result.ndt_records]
        assert stamps == sorted(stamps)

    def test_local_hour_matches_timestamp(self, campaign_result):
        for record in campaign_result.ndt_records[:100]:
            assert record.local_hour == pytest.approx(
                (record.timestamp_s % 86400.0) / 3600.0
            )

    def test_evening_bias(self, campaign_result):
        evening = sum(1 for r in campaign_result.ndt_records if 18 <= r.local_hour < 23)
        night = sum(1 for r in campaign_result.ndt_records if 1 <= r.local_hour < 6)
        assert evening > 2 * night

    def test_traceroutes_toward_clients(self, campaign_result):
        client_ips = {r.client_ip for r in campaign_result.ndt_records}
        for trace in campaign_result.traceroute_records[:100]:
            assert trace.dst_ip in client_ips

    def test_deterministic(self, small_study):
        config = CampaignConfig(seed=5, days=2, total_tests=300, orgs=("Cox",))
        one = small_study.run_campaign(config)
        two = small_study.run_campaign(config)
        assert [r.download_bps for r in one.ndt_records] == [
            r.download_bps for r in two.ndt_records
        ]

    def test_throughput_within_plan(self, small_study, campaign_result):
        plans = {c.ip: c.plan_rate_bps for c in small_study.population.all_clients()}
        for record in campaign_result.ndt_records[:300]:
            assert record.download_bps <= plans[record.client_ip] + 1

    def test_unknown_org_rejected(self, small_study):
        with pytest.raises(KeyError):
            small_study.run_campaign(
                CampaignConfig(seed=1, total_tests=10, orgs=("Nope",))
            )


class TestUploadMeasurement:
    def test_upload_measured_and_below_download_plan(self, small_study, campaign_result):
        uploads = [r.upload_bps for r in campaign_result.ndt_records]
        assert all(u > 0 for u in uploads[:200])
        plans = {c.ip: c.upload_rate_bps for c in small_study.population.all_clients()}
        for record in campaign_result.ndt_records[:200]:
            assert record.upload_bps <= plans[record.client_ip] + 1

    def test_upload_usually_below_download(self, campaign_result):
        below = sum(
            1 for r in campaign_result.ndt_records if r.upload_bps < r.download_bps
        )
        assert below / len(campaign_result.ndt_records) > 0.8
