"""Tests for prefix allocation and longest-prefix matching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.addressing import Prefix, PrefixAllocator, PrefixTable
from repro.util.ip import ip_in_prefix, parse_ip, prefix_size


class TestPrefixAllocator:
    def test_alignment(self):
        allocator = PrefixAllocator(parse_ip("10.0.0.0"), 8)
        prefix = allocator.allocate(24, asn=1)
        assert prefix.base % prefix_size(24) == 0

    def test_sequential_non_overlap(self):
        allocator = PrefixAllocator(parse_ip("10.0.0.0"), 8)
        first = allocator.allocate(20, asn=1)
        second = allocator.allocate(22, asn=2)
        assert not first.contains(second.base)
        assert not second.contains(first.base)

    def test_exhaustion(self):
        allocator = PrefixAllocator(parse_ip("10.0.0.0"), 24)
        allocator.allocate(25, asn=1)
        allocator.allocate(25, asn=2)
        with pytest.raises(RuntimeError):
            allocator.allocate(25, asn=3)

    def test_remaining_decreases(self):
        allocator = PrefixAllocator(parse_ip("10.0.0.0"), 8)
        before = allocator.remaining
        allocator.allocate(16, asn=1)
        assert allocator.remaining == before - prefix_size(16)

    @given(st.lists(st.integers(min_value=16, max_value=28), min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_allocations_never_overlap(self, lengths):
        allocator = PrefixAllocator(parse_ip("10.0.0.0"), 8)
        allocated: list[Prefix] = []
        for index, length in enumerate(lengths):
            prefix = allocator.allocate(length, asn=index)
            for other in allocated:
                shorter, longer = sorted((prefix, other), key=lambda p: p.length)
                assert not ip_in_prefix(longer.base, shorter.base, shorter.length)
            allocated.append(prefix)


class TestPrefixTable:
    def _table(self, prefixes):
        table = PrefixTable()
        for base, length, asn in prefixes:
            table.insert(Prefix(parse_ip(base), length, asn))
        return table

    def test_longest_match_wins(self):
        table = self._table([("10.0.0.0", 8, 1), ("10.1.0.0", 16, 2)])
        assert table.origin_asn(parse_ip("10.1.2.3")) == 2
        assert table.origin_asn(parse_ip("10.2.2.3")) == 1

    def test_no_match(self):
        table = self._table([("10.0.0.0", 8, 1)])
        assert table.lookup(parse_ip("11.0.0.1")) is None

    def test_exact_duplicate_replaces(self):
        table = self._table([("10.0.0.0", 8, 1), ("10.0.0.0", 8, 9)])
        assert table.origin_asn(parse_ip("10.0.0.1")) == 9
        assert len(table) == 1

    def test_prefixes_listing(self):
        table = self._table([("10.0.0.0", 8, 1), ("12.0.0.0", 8, 2)])
        assert {p.asn for p in table.prefixes()} == {1, 2}

    def test_default_route(self):
        table = self._table([("0.0.0.0", 0, 42)])
        assert table.origin_asn(parse_ip("200.1.2.3")) == 42

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 32) - 1),
                st.integers(min_value=8, max_value=28),
            ),
            min_size=1,
            max_size=25,
        ),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    @settings(max_examples=80)
    def test_matches_brute_force(self, raw_prefixes, probe):
        table = PrefixTable()
        prefixes = []
        for index, (base, length) in enumerate(raw_prefixes):
            prefix = Prefix(base, length, index + 1)
            table.insert(prefix)
            prefixes.append(prefix)
        # Brute force: longest prefix containing the probe; later inserts
        # replace earlier exact (base-masked, length) duplicates.
        best = None
        for prefix in prefixes:
            if ip_in_prefix(probe, prefix.base, prefix.length):
                if (
                    best is None
                    or prefix.length > best.length
                ):
                    best = prefix
                elif prefix.length == best.length:
                    best = prefix  # insertion order: last wins
        result = table.lookup(probe)
        if best is None:
            assert result is None
        else:
            assert result is not None
            assert result.length == best.length
