"""The batch engine's byte-identity contract.

``TCPModel.observe_batch`` promises to return exactly what sequential
``observe`` calls would: same floats to the last bit, same noise-stream
consumption, same flow-probe series, same ground-truth labels. These
tests drive both paths over the same randomized request sets (paths,
hours, noise on/off, access loss, probe keys) and compare with ``==`` on
full records and ``repr`` (which also catches numpy scalar types leaking
into records). The final test pins the whole campaign pipeline to a
golden digest captured before the batch engine existed.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.net.batch import LinkTableSet, ObserveRequest
from repro.net.tcp import BOTTLENECK_PRIORITY, classify_bottleneck
from repro.obs import flowprobe
from repro.platforms.campaign import CampaignConfig

#: sha256 over every NDT + traceroute record of the campaign below, as
#: produced by the scalar, pre-batch engine (commit 2b1277e). Catching a
#: drift here means batching changed observable output — a contract
#: violation even if the new output looks statistically fine.
GOLDEN_CAMPAIGN_SHA = "909734efe186a546c49dd2b09d1f69bd262dbd28092910126268867f50ef9786"
GOLDEN_CAMPAIGN = CampaignConfig(seed=11, days=5, total_tests=1200)


def _random_requests(study, seed, count, with_probe_keys=False):
    """Build a randomized request mix over real routed paths."""
    rng = random.Random(seed)
    clients = study.population.all_clients()
    servers = study.mlab.servers()
    requests = []
    attempt = 0
    while len(requests) < count and attempt < count * 3:
        attempt += 1
        client = rng.choice(clients)
        server = rng.choice(servers)
        path = study.forwarder.route_flow(
            client.asn, client.city, server.asn, server.city, ("equiv", attempt)
        )
        if path is None:
            continue
        probe_key = None
        if with_probe_keys and rng.random() < 0.3:
            probe_key = ("equiv-probe", len(requests))
        requests.append(
            ObserveRequest(
                path=path,
                hour=rng.uniform(0.0, 24.0),
                access_rate_bps=rng.choice((25e6, 50e6, 100e6, 940e6)),
                home_factor=rng.uniform(0.2, 1.3),
                access_loss=rng.choice((0.0, 0.0, 0.0, 0.005, 0.02, -0.1)),
                with_noise=rng.random() < 0.75,
                probe_key=probe_key,
            )
        )
    assert len(requests) == count
    return requests


class TestObserveBatchEquivalence:
    def test_batch_matches_sequential_observe(self, small_study):
        requests = _random_requests(small_study, seed=101, count=700)
        scalar_model = small_study.tcp.reseeded(4242)
        batch_model = small_study.tcp.reseeded(4242)

        scalar = [scalar_model.observe_request(r) for r in requests]
        batched = batch_model.observe_batch(requests)

        assert len(batched) == len(scalar)
        for got, want in zip(batched, scalar):
            assert got == want
            assert repr(got) == repr(want)  # catches numpy scalar leaks

    def test_noise_stream_continues_identically(self, small_study):
        """After a batch, the model's RNG sits exactly where scalar left it."""
        requests = _random_requests(small_study, seed=202, count=300)
        scalar_model = small_study.tcp.reseeded(777)
        batch_model = small_study.tcp.reseeded(777)

        for r in requests:
            scalar_model.observe_request(r)
        batch_model.observe_batch(requests)

        assert scalar_model._rng.random() == batch_model._rng.random()
        assert scalar_model._rng.gauss(0.0, 1.0) == batch_model._rng.gauss(0.0, 1.0)

    def test_blocked_dispatch_matches_one_shot(self, small_study):
        """Block size never affects output — only the dispatch grouping."""
        requests = _random_requests(small_study, seed=303, count=256)
        one_shot = small_study.tcp.reseeded(99).observe_batch(requests)

        blocked_model = small_study.tcp.reseeded(99)
        blocked = []
        for start in range(0, len(requests), 37):  # deliberately odd size
            blocked.extend(blocked_model.observe_batch(requests[start:start + 37]))

        assert blocked == one_shot

    def test_flow_probe_series_identical(self, small_study):
        requests = _random_requests(small_study, seed=404, count=120, with_probe_keys=True)
        assert any(r.probe_key is not None for r in requests)
        try:
            flowprobe.activate(flowprobe.FlowProbeRecorder(max_flows=256))
            small_study.tcp.reseeded(11).observe_batch(requests)
            batched_series = [s.to_dict() for s in flowprobe.active().series()]
            flowprobe.deactivate()

            flowprobe.activate(flowprobe.FlowProbeRecorder(max_flows=256))
            scalar_model = small_study.tcp.reseeded(11)
            for r in requests:
                scalar_model.observe_request(r)
            scalar_series = [s.to_dict() for s in flowprobe.active().series()]
        finally:
            flowprobe.deactivate()

        assert batched_series == scalar_series
        assert batched_series  # the probe actually recorded something

    def test_empty_batch(self, small_study):
        assert small_study.tcp.reseeded(1).observe_batch([]) == []


class TestLinkTableSet:
    def test_cells_match_scalar_link_params(self, small_study):
        links = small_study.links
        tables = LinkTableSet(links)
        rng = random.Random(7)
        link_ids = list(links.param_map())
        for _ in range(500):
            link_id = rng.choice(link_ids)
            hour = rng.uniform(0.0, 24.0)
            loss, queue_ms, standing, available = tables.cell(link_id, hour)
            params = links.params(link_id)
            assert loss == params.loss_rate(hour)
            assert queue_ms == params.queue_delay_ms(hour)
            assert standing == (params.utilization(hour) >= 1.0)
            assert available == params.available_bps(hour)

    def test_parallel_links_share_cells(self, small_study):
        links = small_study.links
        tables = LinkTableSet(links)
        # Group links by shared (profile, capacity) template.
        by_group = {}
        for link_id, params in links.param_map().items():
            by_group.setdefault((id(params.profile), params.capacity_bps), []).append(link_id)
        group = next((ids for ids in by_group.values() if len(ids) > 1), None)
        if group is None:
            pytest.skip("world has no parallel link groups")
        for link_id in group:
            tables.cell(link_id, 20.0)
        assert tables.cells() == 1  # one cell serves the whole group


class TestBottleneckTieBreak:
    def test_priority_order_documented(self):
        assert BOTTLENECK_PRIORITY == ("access", "interconnect", "latency")

    def test_access_beats_interconnect_on_tie(self):
        kind, link = classify_bottleneck(100.0, 100.0, 100.0, bottleneck_link=5)
        assert kind == "access"
        assert link is None

    def test_interconnect_beats_latency_on_tie(self):
        kind, link = classify_bottleneck(100.0, 200.0, 100.0, bottleneck_link=5)
        assert kind == "interconnect"
        assert link == 5

    def test_latency_when_strictly_smallest(self):
        kind, link = classify_bottleneck(50.0, 200.0, 100.0, bottleneck_link=5)
        assert kind == "latency"
        assert link is None


class TestCampaignGolden:
    def test_campaign_records_match_pre_batch_golden(self, small_study):
        """The full pipeline (routing, campaign blocking, TCP batching,
        daemon contention, traceroutes) reproduces the scalar engine's
        output bit-for-bit. Runs uncached so a stale artifact cache can
        never mask a drift."""
        result = small_study._run_campaign_uncached(GOLDEN_CAMPAIGN)
        h = hashlib.sha256()
        for r in result.ndt_records:
            h.update(repr((
                r.test_id, r.timestamp_s, r.local_hour, r.client_ip, r.server_id,
                r.server_ip, r.server_asn, r.server_city, r.download_bps, r.rtt_ms,
                r.retx_rate, r.congestion_signals, r.gt_client_asn, r.gt_client_org,
                r.gt_crossed_links, r.gt_bottleneck_link, r.gt_bottleneck_kind,
                r.rtt_min_ms, r.rtt_max_ms, r.upload_bps,
            )).encode())
        for t in result.traceroute_records:
            h.update(repr((
                t.trace_id, t.timestamp_s, t.src_ip, t.src_asn, t.dst_ip,
                tuple((hop.ttl, hop.ip, hop.rtt_ms) for hop in t.hops),
                t.reached_destination, t.gt_crossed_links, t.gt_as_path,
            )).encode())
        assert h.hexdigest() == GOLDEN_CAMPAIGN_SHA
