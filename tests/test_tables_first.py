"""Table-first generation: the recorder's arrays ARE the world.

The generator's :class:`WorldTableRecorder` emits the compiled arrays
during construction; the object-graph walk (``compile_from_object_graph``
/ ``REPRO_TABLE_FIRST=0``) is demoted to the reference implementation.
These tests pin the flip's core promise: both builders produce
byte-identical arrays (golden-digest equality), the escape hatch works,
and the lazy object views over table rows equal the fabric's objects.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.net.compiled import (
    CompiledWorld,
    clear_compile_cache,
    compile_from_object_graph,
    compile_world,
)
from repro.net.link import ProvisioningConfig, provision_links
from repro.topology.generator import InternetConfig, generate_internet
from repro.topology.tables import table_first_enabled
from repro.validate.contracts import validate_internet

_SEEDS = (9, 27)


def _tiny(seed: int) -> InternetConfig:
    return InternetConfig(seed=seed, n_stub=40, n_transit=5)


def _golden_digest(world: CompiledWorld) -> str:
    """One sha256 over every array, in schema order — the byte identity."""
    hasher = hashlib.sha256()
    for name in CompiledWorld._ARRAY_FIELDS:
        array = np.ascontiguousarray(getattr(world, name))
        hasher.update(name.encode())
        hasher.update(str(array.dtype).encode())
        hasher.update(str(array.shape).encode())
        hasher.update(array.tobytes())
    return hasher.hexdigest()


class TestRecorderEmission:
    def test_generator_emits_full_table_schema(self, tiny_internet):
        assert table_first_enabled()
        tables = tiny_internet.tables
        assert tables is not None
        assert set(tables) == set(CompiledWorld._ARRAY_FIELDS)
        for name, array in tables.items():
            assert isinstance(array, np.ndarray), name

    @pytest.mark.parametrize("seed", _SEEDS)
    def test_recorder_arrays_match_object_graph_walk(self, seed):
        internet = generate_internet(_tiny(seed))
        reference = compile_from_object_graph(internet)
        for name in CompiledWorld._ARRAY_FIELDS:
            recorded = internet.tables[name]
            derived = np.ascontiguousarray(getattr(reference, name))
            assert recorded.dtype == derived.dtype, name
            assert recorded.shape == derived.shape, name
            assert recorded.tobytes() == derived.tobytes(), name

    @pytest.mark.parametrize("seed", _SEEDS)
    def test_golden_digest_agrees_across_builders(self, seed):
        internet = generate_internet(_tiny(seed))
        clear_compile_cache()
        table_first = compile_world(internet)
        reference = compile_from_object_graph(internet)
        assert _golden_digest(table_first) == _golden_digest(reference)

    def test_generation_is_deterministic(self):
        clear_compile_cache()
        first = compile_world(generate_internet(_tiny(_SEEDS[0])))
        first_digest = _golden_digest(first)
        clear_compile_cache()
        second = compile_world(generate_internet(_tiny(_SEEDS[0])))
        assert _golden_digest(second) == first_digest


class TestEscapeHatch:
    def test_table_first_off_skips_recorder_and_stays_identical(self, monkeypatch):
        internet_on = generate_internet(_tiny(_SEEDS[0]))
        clear_compile_cache()
        world_on = compile_world(internet_on)

        monkeypatch.setenv("REPRO_TABLE_FIRST", "0")
        assert not table_first_enabled()
        internet_off = generate_internet(_tiny(_SEEDS[0]))
        assert internet_off.tables is None
        clear_compile_cache()
        world_off = compile_world(internet_off)
        assert _golden_digest(world_off) == _golden_digest(world_on)
        clear_compile_cache()

    def test_repro_compiled_off_also_disables_recorder(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED", "0")
        assert not table_first_enabled()
        internet = generate_internet(_tiny(_SEEDS[1]))
        assert internet.tables is None


class TestLazyLinkViews:
    def test_interconnect_views_equal_fabric_objects(self, tiny_internet):
        world = compile_world(tiny_internet)
        fabric_links = tiny_internet.fabric.interconnects()
        views = world.interconnect_views()
        assert len(views) == len(fabric_links)
        for view, link in zip(views, fabric_links):
            assert view == link
        assert world.interconnect_view(fabric_links[0].link_id) == fabric_links[0]

    def test_unknown_link_id_yields_none(self, tiny_internet):
        world = compile_world(tiny_internet)
        assert world.interconnect_view(10**9) is None

    def test_provision_links_identical_with_and_without_tables(self):
        internet = generate_internet(_tiny(_SEEDS[0]))
        config = ProvisioningConfig(seed=internet.seed)
        from_tables = provision_links(internet, config)
        internet.tables = None
        clear_compile_cache()
        from_fabric = provision_links(internet, config)
        assert from_tables.param_map() == from_fabric.param_map()


class TestContractCoverage:
    def test_world_agreement_passes_on_table_first_world(self):
        internet = generate_internet(_tiny(_SEEDS[1]))
        clear_compile_cache()
        report = validate_internet(internet)
        result = [r for r in report.results if r.name == "compiled.world_agreement"]
        assert len(result) == 1
        assert result[0].passed, report.render()
