"""Round-trip tests for dataset export/import."""

import pytest

from repro.data.ndt_io import (
    load_ndt_csv,
    load_traceroutes_jsonl,
    write_ndt_csv,
    write_traceroutes_jsonl,
)
from repro.data.topology_io import (
    load_as_org_map,
    load_prefix_table,
    load_relationships,
    relationships_to_graph_edges,
    write_as_org_map,
    write_prefix_table,
    write_relationships,
)
from repro.platforms.campaign import CampaignConfig
from repro.topology.asgraph import AS, ASGraph, ASRole


@pytest.fixture(scope="module")
def small_campaign(small_study):
    return small_study.run_campaign(
        CampaignConfig(seed=51, days=2, total_tests=300, orgs=("Cox",))
    )


class TestNDTRoundTrip:
    def test_public_fields_preserved(self, small_campaign, tmp_path):
        path = str(tmp_path / "ndt.csv")
        count = write_ndt_csv(small_campaign.ndt_records, path)
        assert count == len(small_campaign.ndt_records)
        loaded = load_ndt_csv(path)
        assert len(loaded) == count
        for original, reloaded in zip(small_campaign.ndt_records, loaded):
            assert reloaded.test_id == original.test_id
            assert reloaded.client_ip == original.client_ip
            assert reloaded.download_bps == pytest.approx(original.download_bps)
            assert reloaded.rtt_min_ms == pytest.approx(original.rtt_min_ms)

    def test_ground_truth_absent_by_default(self, small_campaign, tmp_path):
        path = str(tmp_path / "ndt.csv")
        write_ndt_csv(small_campaign.ndt_records, path)
        loaded = load_ndt_csv(path)
        assert all(r.gt_client_org == "" for r in loaded)
        assert all(r.gt_crossed_links == () for r in loaded)

    def test_ground_truth_opt_in(self, small_campaign, tmp_path):
        path = str(tmp_path / "ndt_gt.csv")
        write_ndt_csv(small_campaign.ndt_records, path, include_ground_truth=True)
        loaded = load_ndt_csv(path)
        originals = small_campaign.ndt_records
        assert loaded[0].gt_client_org == originals[0].gt_client_org
        assert loaded[0].gt_crossed_links == originals[0].gt_crossed_links


class TestTracerouteRoundTrip:
    def test_hops_preserved(self, small_campaign, tmp_path):
        path = str(tmp_path / "traces.jsonl")
        count = write_traceroutes_jsonl(small_campaign.traceroute_records, path)
        loaded = load_traceroutes_jsonl(path)
        assert len(loaded) == count
        for original, reloaded in zip(small_campaign.traceroute_records, loaded):
            assert reloaded.router_hop_ips() == original.router_hop_ips()
            assert reloaded.reached_destination == original.reached_destination

    def test_analysis_runs_on_reloaded_public_data(
        self, small_study, small_campaign, tmp_path
    ):
        """MAP-IT over exported-then-reloaded traces must match in-memory."""
        from repro.inference.mapit import MapIt

        path = str(tmp_path / "traces.jsonl")
        write_traceroutes_jsonl(small_campaign.traceroute_records, path)
        loaded = load_traceroutes_jsonl(path)
        mapit = MapIt(small_study.oracle, small_study.internet.graph)
        original = mapit.infer(
            [t.router_hop_ips() for t in small_campaign.traceroute_records]
        )
        reloaded = mapit.infer([t.router_hop_ips() for t in loaded])
        assert {l.ip_pair() for l in original.links} == {
            l.ip_pair() for l in reloaded.links
        }


class TestTopologyRoundTrip:
    def test_prefix_table(self, tiny_internet, tmp_path):
        path = str(tmp_path / "pfx2as.txt")
        count = write_prefix_table(tiny_internet.prefix_table, path)
        assert count == len(tiny_internet.prefix_table)
        loaded = load_prefix_table(path)
        for prefix in tiny_internet.prefix_table.prefixes()[:200]:
            assert loaded.origin_asn(prefix.base + 1) == tiny_internet.prefix_table.origin_asn(
                prefix.base + 1
            )

    def test_relationships(self, tiny_internet, tmp_path):
        path = str(tmp_path / "rels.txt")
        count = write_relationships(tiny_internet.graph, path)
        assert count == tiny_internet.graph.edge_count()
        rows = load_relationships(path)
        rebuilt = ASGraph()
        for autonomous_system in tiny_internet.graph:
            rebuilt.add_as(
                AS(autonomous_system.asn, autonomous_system.name, ASRole.STUB)
            )
        relationships_to_graph_edges(rows, rebuilt)
        for asn in tiny_internet.graph.asns()[:100]:
            assert rebuilt.neighbors(asn) == tiny_internet.graph.neighbors(asn)

    def test_org_map(self, tiny_internet, tmp_path):
        path = str(tmp_path / "orgs.txt")
        count = write_as_org_map(tiny_internet.orgs, path)
        assert count == len(tiny_internet.orgs)
        loaded = load_as_org_map(path)
        comcast = tiny_internet.as_named("Comcast")
        assert loaded.siblings(comcast.asn) == tiny_internet.orgs.siblings(comcast.asn)
        assert loaded.canonical_asn(comcast.asn) == tiny_internet.orgs.canonical_asn(
            comcast.asn
        )

    def test_malformed_lines_rejected(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("not a valid line\n")
        with pytest.raises(ValueError):
            load_prefix_table(str(bad))
        with pytest.raises(ValueError):
            load_relationships(str(bad))
