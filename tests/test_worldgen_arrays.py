"""Array-native generation: builders, parity at scale, and the RSS gate.

PR 8 retires the object graph from the worldgen hot path: the builder
streams every decision into :class:`WorldTableRecorder` and the classic
``ASGraph`` / ``RouterFabric`` / ``PrefixTable`` objects become lazy
facades replayed from the recorded streams. These tests pin that down
where :mod:`tests.test_tables_first` (tiny worlds) does not reach:

* golden-digest parity between the array-native compile and the
  object-walk reference at scale 0.25 and the full paper scale 1.0,
  including the pinned scale-1.0 sha the committed benchmarks record;
* facades stay unmaterialized until someone asks for them — summaries
  and snapshot persistence never build an object;
* :class:`TableBuilder` growth/`extend`/copy semantics across capacity
  doublings;
* the nested-prefix fallback of :func:`flatten_prefix_spans` against
  the reference sweep;
* (slow tier) the scale-4.0 world generates inside a net-RSS ceiling
  measured in a fresh interpreter.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.net.compiled import (
    CompiledWorld,
    clear_compile_cache,
    compile_from_object_graph,
    compile_world,
)
from repro.topology.generator import (
    InternetConfig,
    generate_internet,
    last_generation_stats,
)
from repro.topology.tables import (
    TableBuilder,
    _sweep_spans,
    flatten_prefix_spans,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

#: The scale-1.0 seed-7 world every committed benchmark recorded
#: (BENCH_PR6 and BENCH_PR8 ``*_sha256`` fields). Generation is pure
#: integer arithmetic off a seeded RNG, so this is platform-stable; if
#: it moves, worldgen's output changed and every cached snapshot and
#: calibrated gate moved with it.
GOLDEN_SCALE1_SHA = "ee9fedefaaa7c249820931fdb1cbbfef42b10aee62c911d4b964157dabf28326"


def _golden_digest(world: CompiledWorld) -> str:
    hasher = hashlib.sha256()
    for name in CompiledWorld._ARRAY_FIELDS:
        array = np.ascontiguousarray(getattr(world, name))
        hasher.update(name.encode())
        hasher.update(str(array.dtype).encode())
        hasher.update(str(array.shape).encode())
        hasher.update(array.tobytes())
    return hasher.hexdigest()


class TestGoldenParityAtScale:
    @pytest.mark.parametrize("scale", (0.25, 1.0))
    def test_array_native_matches_object_walk(self, scale):
        internet = generate_internet(InternetConfig(seed=7, scale=scale))
        clear_compile_cache()
        array_native = compile_world(internet)
        reference = compile_from_object_graph(internet)
        assert _golden_digest(array_native) == _golden_digest(reference)

    def test_scale1_digest_is_the_benchmarked_world(self):
        internet = generate_internet(InternetConfig(seed=7, scale=1.0))
        clear_compile_cache()
        assert _golden_digest(compile_world(internet)) == GOLDEN_SCALE1_SHA


class TestLazyFacades:
    def test_generation_leaves_facades_unmaterialized(self):
        internet = generate_internet(InternetConfig(seed=7, scale=0.25))
        assert not internet.materialized()
        # Summary, digest inputs, and compiled arrays all come straight
        # from the recorder...
        summary = internet.summary()
        assert summary["ases"] > 0
        clear_compile_cache()
        compile_world(internet)
        assert not internet.materialized()
        # ...and the object views only exist once someone asks: one
        # facade access builds that view, materialize() builds them all.
        graph = internet.graph
        assert len(graph) == summary["ases"]
        assert not internet.materialized()  # fabric/prefixes still lazy
        internet.materialize()
        assert internet.materialized()

    def test_generation_stats_record_phases_and_rss(self):
        internet = generate_internet(InternetConfig(seed=7, scale=0.25))
        stats = last_generation_stats()
        assert stats is not None
        assert stats["peak_rss_mb"] > 0
        assert stats["total_wall_s"] >= 0
        assert "stubs" in stats["phases"]
        for timing in stats["phases"].values():
            assert set(timing) == {"wall_s", "cpu_s"}
        assert stats["counts"]["ases"] == internet.summary()["ases"]
        # Reading the stats must not have materialized the facades.
        assert not internet.materialized()


class TestTableBuilder:
    def test_append_grows_across_doublings(self):
        builder = TableBuilder(np.int64, capacity=2)
        for value in range(1000):
            builder.append(value)
        assert len(builder) == 1000
        assert builder.array().tolist() == list(range(1000))

    def test_extend_crossing_capacity_boundary(self):
        builder = TableBuilder(np.int64, capacity=4)
        builder.append(1)
        builder.extend(range(2, 100))
        assert builder.array().tolist() == list(range(1, 100))

    def test_row_builder_and_get(self):
        builder = TableBuilder(np.int64, cols=3, capacity=2)
        for row in range(50):
            builder.append((row, row * 2, row * 3))
        assert builder.get(0).tolist() == [0, 0, 0]
        assert builder.get(-1).tolist() == [49, 98, 147]
        with pytest.raises(IndexError):
            builder.get(50)
        assert builder.array().shape == (50, 3)

    def test_array_is_a_tight_independent_copy(self):
        builder = TableBuilder(np.int64, capacity=2)
        builder.extend([1, 2, 3])
        snapshot = builder.array()
        builder.append(4)
        assert snapshot.tolist() == [1, 2, 3]
        assert snapshot.base is None  # owns its memory, no 2x slack pinned

    def test_view_is_zero_copy(self):
        builder = TableBuilder(np.int64, capacity=8)
        builder.extend([1, 2, 3])
        view = builder.view()
        assert view.base is not None
        assert view.tolist() == [1, 2, 3]


class TestFlattenNestedFamilies:
    def test_disjoint_fast_path_equals_sweep(self):
        bases = np.array([0, 512, 1024], dtype=np.int64)
        lengths = np.array([24, 24, 24], dtype=np.int64)
        asns = np.array([1, 2, 3], dtype=np.int64)
        starts, ends, origins = flatten_prefix_spans(bases, lengths, asns)
        sizes = (np.int64(1) << (32 - lengths)).tolist()
        expected = _sweep_spans(
            sorted(zip(bases.tolist(), (bases + sizes).tolist(), asns.tolist()))
        )
        assert starts.tolist() == expected[0].tolist()
        assert ends.tolist() == expected[1].tolist()
        assert origins.tolist() == expected[2].tolist()

    def test_nested_family_falls_back_to_laminar_sweep(self):
        # A /16 covering a /24 sub-allocation: the inner (longer) prefix
        # must win its interval, the outer keeps the flanks.
        size16 = 1 << 16
        size24 = 1 << 8
        inner_base = 10 * size24
        bases = np.array([0, inner_base], dtype=np.int64)
        lengths = np.array([16, 24], dtype=np.int64)
        asns = np.array([100, 200], dtype=np.int64)
        starts, ends, origins = flatten_prefix_spans(bases, lengths, asns)
        assert starts.tolist() == [0, inner_base, inner_base + size24]
        assert ends.tolist() == [inner_base, inner_base + size24, size16]
        assert origins.tolist() == [100, 200, 100]

    def test_intervals_stay_disjoint_and_lpm_correct(self):
        rng = np.random.default_rng(7)
        # Random laminar family: /12 pools each containing a few /20s.
        bases, lengths, asns = [], [], []
        for pool in range(6):
            pool_base = pool << 20
            bases.append(pool_base)
            lengths.append(12)
            asns.append(1000 + pool)
            for sub in rng.choice(16, size=3, replace=False):
                bases.append(pool_base + (int(sub) << 12))
                lengths.append(20)
                asns.append(2000 + pool * 16 + int(sub))
        starts, ends, origins = flatten_prefix_spans(
            np.array(bases, dtype=np.int64),
            np.array(lengths, dtype=np.int64),
            np.array(asns, dtype=np.int64),
        )
        assert bool(np.all(starts[1:] >= ends[:-1]))  # disjoint, sorted
        # Spot-check longest-prefix-match semantics per elementary interval.
        for probe_ip in rng.integers(0, 6 << 20, size=200):
            best = None
            for base, length, asn in zip(bases, lengths, asns):
                size = 1 << (32 - length)
                if base <= probe_ip < base + size:
                    if best is None or length > best[0]:
                        best = (length, asn)
            index = int(np.searchsorted(starts, probe_ip, side="right")) - 1
            covered = index >= 0 and probe_ip < ends[index]
            if best is None:
                assert not covered
            else:
                assert covered and origins[index] == best[1]


@pytest.mark.slow
class TestScale4MemoryCeiling:
    #: Net generation RSS allowed at scale 4.0. The array-native path
    #: measures ~31 MB (BENCH_PR8); the retired object path measured
    #: ~82 MB, so the ceiling fails on an object-graph regression while
    #: leaving 2x headroom for allocator noise.
    NET_RSS_CEILING_MB = 64.0

    def test_scale4_generates_within_rss_ceiling(self):
        script = (
            "import json, resource, time\n"
            "def rss_mb():\n"
            # VmHWM lives on the memory map, which execve replaces;
            # ru_maxrss survives fork+exec and would report the pytest
            # parent's watermark as this child's floor. getrusage is
            # the off-Linux fallback.
            "    try:\n"
            "        with open('/proc/self/status') as status:\n"
            "            for line in status:\n"
            "                if line.startswith('VmHWM:'):\n"
            "                    return int(line.split()[1]) / 1024.0\n"
            "    except OSError:\n"
            "        pass\n"
            "    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0\n"
            "from repro.topology.generator import InternetConfig, generate_internet\n"
            "floor = rss_mb()\n"
            "start = time.perf_counter()\n"
            "internet = generate_internet(InternetConfig(seed=7, scale=4.0))\n"
            "wall = time.perf_counter() - start\n"
            "assert not internet.materialized()\n"
            "print(json.dumps({'net_rss_mb': round(rss_mb() - floor, 1),"
            " 'wall_s': round(wall, 3),"
            " 'ases': internet.summary()['ases']}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        env["REPRO_CACHE"] = "0"
        env.pop("REPRO_TABLE_FIRST", None)
        result = subprocess.run(
            [sys.executable, "-c", script],
            check=True, capture_output=True, text=True, env=env,
        )
        probe = json.loads(result.stdout.strip().splitlines()[-1])
        assert probe["ases"] > 8000  # scale 4.0 really is the big world
        assert probe["net_rss_mb"] <= self.NET_RSS_CEILING_MB, probe
