"""Tests for organizations and sibling collapse."""

import pytest

from repro.topology.orgs import Organization, OrgMap


def _org_map():
    orgs = OrgMap()
    orgs.add(Organization("org-a", "Alpha", (7922, 7015, 22909), primary_asn=7922))
    orgs.add(Organization("org-b", "Beta", (3356,)))
    return orgs


class TestOrganization:
    def test_primary_defaults_to_first(self):
        org = Organization("o", "X", (20, 10))
        assert org.primary == 20

    def test_explicit_primary(self):
        org = Organization("o", "X", (20, 10), primary_asn=10)
        assert org.primary == 10

    def test_primary_must_be_member(self):
        with pytest.raises(ValueError):
            Organization("o", "X", (20, 10), primary_asn=99)


class TestOrgMap:
    def test_siblings(self):
        orgs = _org_map()
        assert orgs.siblings(7015) == {7922, 7015, 22909}

    def test_siblings_of_unmapped(self):
        orgs = _org_map()
        assert orgs.siblings(9999) == {9999}

    def test_are_siblings(self):
        orgs = _org_map()
        assert orgs.are_siblings(7922, 22909)
        assert not orgs.are_siblings(7922, 3356)
        assert orgs.are_siblings(5, 5)  # identity even when unmapped

    def test_canonical_uses_primary(self):
        orgs = _org_map()
        assert orgs.canonical_asn(7015) == 7922
        assert orgs.canonical_asn(22909) == 7922
        assert orgs.canonical_asn(1234) == 1234

    def test_duplicate_org_rejected(self):
        orgs = _org_map()
        with pytest.raises(ValueError):
            orgs.add(Organization("org-a", "Dup", (99,)))

    def test_asn_in_two_orgs_rejected(self):
        orgs = _org_map()
        with pytest.raises(ValueError):
            orgs.add(Organization("org-c", "Gamma", (3356, 77)))

    def test_organizations_sorted(self):
        orgs = _org_map()
        assert [o.org_id for o in orgs.organizations()] == ["org-a", "org-b"]
