"""Seed-discipline audit: all randomness flows through repro.util.rng.

The reproducibility story (same seed → bit-identical world, campaign,
and tables) only holds if no module reaches for ambient randomness.
This test walks the AST of every module under ``src/repro`` and rejects:

* ``random.random()`` / ``random.choice`` etc. on the *module-level*
  shared ``random`` instance (un-seeded global state);
* ``random.seed``/``numpy.random.seed`` (mutating global state);
* ``numpy.random.<dist>`` legacy global-state calls and bare
  ``numpy.random.default_rng()`` with no derived seed.

Importing the ``random`` *module* to construct ``random.Random(seed)``
instances is fine — that is exactly what ``repro.util.rng`` does — so
the audit targets call sites, not imports.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: The one module allowed to touch seeding primitives: it owns them.
EXEMPT = {SRC / "util" / "rng.py"}

#: random.<fn> calls that hit the shared module-level instance.
GLOBAL_RANDOM_FNS = {
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "sample", "shuffle", "gauss", "normalvariate", "betavariate",
    "expovariate", "seed", "getrandbits", "triangular",
}


def _module_alias_targets(tree: ast.AST) -> dict[str, str]:
    """Map local alias -> imported module path ('np' -> 'numpy')."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for name in node.names:
                aliases.setdefault(name.asname or name.name,
                                   f"{node.module}.{name.name}")
    return aliases


def _dotted(node: ast.AST) -> str | None:
    """Render an attribute chain like ``np.random.seed`` as a string."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _audit_module(path: pathlib.Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    aliases = _module_alias_targets(tree)
    offenders: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        head, _, rest = dotted.partition(".")
        target = aliases.get(head, head)
        try:
            shown = path.relative_to(SRC.parent)
        except ValueError:  # self-test files live outside src/
            shown = path.name
        where = f"{shown}:{node.lineno}"
        # random.<fn>(...) on the module-level shared instance.
        if target == "random" and rest in GLOBAL_RANDOM_FNS:
            offenders.append(f"{where}: global-state call {dotted}()")
        # numpy.random legacy functions and global seeding.
        full = f"{target}.{rest}" if rest else target
        if ".random." in f"{full}." and full.startswith("numpy"):
            tail = full.split("numpy.random.", 1)[-1]
            if tail and tail not in {"default_rng", "Generator", "SeedSequence"}:
                offenders.append(f"{where}: numpy global-state call {dotted}()")
            elif tail == "default_rng" and not node.args and not node.keywords:
                offenders.append(f"{where}: unseeded {dotted}()")
    return offenders


def _all_modules() -> list[pathlib.Path]:
    return sorted(p for p in SRC.rglob("*.py") if p not in EXEMPT)


@pytest.mark.parametrize("path", _all_modules(),
                         ids=lambda p: str(p.relative_to(SRC)))
def test_no_ambient_randomness(path):
    offenders = _audit_module(path)
    assert not offenders, "\n".join(offenders)


def test_audit_actually_detects_offenders(tmp_path):
    """Self-test: the auditor flags each forbidden pattern."""
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import random\n"
        "import numpy as np\n"
        "x = random.random()\n"
        "random.seed(0)\n"
        "y = np.random.uniform(0, 1)\n"
        "np.random.seed(1)\n"
        "g = np.random.default_rng()\n"
    )
    offenders = _audit_module(bad)
    assert len(offenders) == 5

    good = tmp_path / "good.py"
    good.write_text(
        "import random\n"
        "import numpy as np\n"
        "r = random.Random(7)\n"
        "x = r.random()\n"
        "g = np.random.default_rng(7)\n"
        "y = g.uniform(0, 1)\n"
    )
    assert _audit_module(good) == []


def test_exemption_is_exactly_the_rng_module():
    assert {p.name for p in EXEMPT} == {"rng.py"}
    for path in EXEMPT:
        assert path.exists()
