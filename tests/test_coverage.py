"""Tests for the §5 coverage analysis."""

import pytest

from repro.core.coverage import (
    BorderSet,
    collect_target_traces,
    coverage_analysis,
)
from repro.inference.bdrmap import collect_bdrmap_traces
from repro.platforms.ark import make_ark_vps
from repro.topology.asgraph import Relationship


class TestBorderSet:
    def test_counts(self):
        border_set = BorderSet(
            "x", frozenset({1, 2}), frozenset({(10, 1), (11, 2), (12, 2)})
        )
        assert border_set.as_count() == 2
        assert border_set.router_count() == 3

    def test_restrict(self):
        border_set = BorderSet(
            "x", frozenset({1, 2}), frozenset({(10, 1), (11, 2)})
        )
        peers_only = border_set.restrict(frozenset({2}))
        assert peers_only.as_level == frozenset({2})
        assert peers_only.router_level == frozenset({(11, 2)})


@pytest.fixture(scope="module")
def vp_report(small_study):
    study = small_study
    vp = next(v for v in make_ark_vps(study.internet) if v.label == "COX-1")
    engine = study.traceroute_engine
    bdrmap_traces = collect_bdrmap_traces(study.internet, vp, engine)
    mlab_targets = [(s.ip, s.asn, s.city) for s in study.mlab.servers()]
    st_targets = [(s.ip, s.asn, s.city) for s in study.speedtest.servers()]
    alexa_targets = [(t.ip, t.asn, t.city) for t in study.alexa_targets(count=120)]
    platform_traces = {
        "mlab": collect_target_traces(study.internet, vp, engine, mlab_targets, "mlab"),
        "speedtest": collect_target_traces(study.internet, vp, engine, st_targets, "speedtest"),
        "alexa": collect_target_traces(study.internet, vp, engine, alexa_targets, "alexa"),
    }
    return study, coverage_analysis(
        study.internet, vp, bdrmap_traces, platform_traces, study.oracle
    )


class TestCoverageAnalysis:
    def test_fractions_bounded(self, vp_report):
        _study, report = vp_report
        for name in ("mlab", "speedtest", "alexa"):
            for level in ("as", "router"):
                fraction = report.coverage_fraction(name, level)
                assert 0.0 <= fraction <= 1.0

    def test_platform_subset_of_discovered_mostly(self, vp_report):
        _study, report = vp_report
        # Coverage is computed against the bdrmap denominator; the covered
        # intersection can never exceed it.
        covered = len(
            report.reachable["mlab"].as_level & report.discovered.as_level
        )
        assert covered <= report.discovered.as_count()

    def test_speedtest_covers_more_than_mlab(self, vp_report):
        _study, report = vp_report
        assert report.coverage_fraction("speedtest", "as") >= report.coverage_fraction(
            "mlab", "as"
        )

    def test_peers_better_covered_than_all(self, vp_report):
        # A tendency in the paper, not an invariant — at the reduced test
        # scale a VP can flip by a little, so allow slack.
        _study, report = vp_report
        all_frac = report.coverage_fraction("mlab", "as")
        peer_frac = report.coverage_fraction("mlab", "as", peers_only=True)
        assert peer_frac >= all_frac - 0.05

    def test_set_difference_antisymmetric_bounds(self, vp_report):
        _study, report = vp_report
        a_minus_b = report.set_difference("alexa", "mlab")
        assert 0 <= a_minus_b <= report.reachable["alexa"].as_count()

    def test_relationships_annotated(self, vp_report):
        _study, report = vp_report
        assert report.discovered.as_level <= set(report.relationships)
        assert any(
            rel is Relationship.PEER for rel in report.relationships.values()
        )

    def test_bad_level_rejected(self, vp_report):
        _study, report = vp_report
        with pytest.raises(ValueError):
            report.coverage_fraction("mlab", "nope")
