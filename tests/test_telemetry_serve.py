"""The live telemetry endpoint: routing, payloads, and the real socket.

``route()`` is a pure request → response-bytes function, so most of the
coverage needs no socket at all; one test starts a real server on an
ephemeral port and scrapes it the way Prometheus (or a curl-wielding
operator) would mid-campaign.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.obs import metrics, serve, timeseries


@pytest.fixture(autouse=True)
def _clean_state():
    metrics.set_enabled(None)
    metrics.reset()
    timeseries.reset()
    yield
    metrics.set_enabled(None)
    metrics.reset()
    timeseries.reset()


def _status(response: bytes) -> str:
    return response.split(b"\r\n", 1)[0].decode()


def _body(response: bytes) -> bytes:
    return response.split(b"\r\n\r\n", 1)[1]


class TestRoute:
    def test_metrics_route_serves_openmetrics(self):
        metrics.counter("serve_test.events").inc(5)
        response = serve.route("GET", "/metrics")
        assert _status(response) == "HTTP/1.1 200 OK"
        assert b"application/openmetrics-text" in response
        body = _body(response)
        assert b"serve_test_events_total 5" in body
        assert body.endswith(b"# EOF\n")

    def test_healthz_reports_liveness(self):
        payload = json.loads(_body(serve.route("GET", "/healthz")))
        assert payload["status"] == "ok"
        assert payload["pid"] > 0
        assert "metrics_enabled" in payload

    def test_snapshot_serves_full_state(self):
        metrics.counter("serve_test.hits").inc()
        timeseries.series("serve_test.rate", capacity=4).record(2.0, t=1.0)
        payload = json.loads(_body(serve.route("GET", "/snapshot")))
        assert payload["metrics"]["serve_test.hits"] == 1
        assert payload["timeseries"]["serve_test.rate"]["samples"] == [[1.0, 2.0]]
        assert "pool" in payload

    def test_unknown_path_is_404_and_lists_routes(self):
        response = serve.route("GET", "/nope")
        assert _status(response) == "HTTP/1.1 404 Not Found"
        assert b"/metrics" in _body(response)

    def test_non_get_is_405(self):
        assert _status(serve.route("POST", "/metrics")).startswith("HTTP/1.1 405")

    def test_query_string_is_ignored(self):
        assert _status(serve.route("GET", "/healthz?x=1")) == "HTTP/1.1 200 OK"


class TestTelemetryServer:
    def test_live_scrape_on_ephemeral_port(self):
        metrics.counter("serve_live.events").inc(7)
        server = serve.TelemetryServer(port=0).start()
        try:
            assert server.port != 0  # real bound port resolved
            with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as reply:
                assert reply.status == 200
                text = reply.read().decode()
            assert "serve_live_events_total 7" in text
            assert text.endswith("# EOF\n")
            with urllib.request.urlopen(f"{server.url}/healthz", timeout=5) as reply:
                assert json.loads(reply.read())["status"] == "ok"
        finally:
            server.stop()

    def test_server_owns_its_sampler(self):
        sampler = timeseries.Sampler(interval_s=0.01)
        sampler.add("serve_live.tick", lambda: 1.0, capacity=8)
        server = serve.TelemetryServer(port=0, sampler=sampler).start()
        try:
            assert sampler.running
        finally:
            server.stop()
        assert not sampler.running

    def test_start_is_idempotent(self):
        server = serve.TelemetryServer(port=0).start()
        try:
            assert server.start() is server
        finally:
            server.stop()
