"""Tests for valley-free BGP path computation."""

import pytest

from repro.routing.bgp import BGPRouting, RouteType
from repro.topology.asgraph import AS, ASGraph, ASRole, Relationship


def _graph(edges):
    """Build a graph from (a, b, rel_of_a) edge triples."""
    graph = ASGraph()
    asns = {a for a, _b, _r in edges} | {b for _a, b, _r in edges}
    for asn in sorted(asns):
        graph.add_as(AS(asn, f"AS{asn}", ASRole.STUB))
    for a, b, rel in edges:
        graph.add_edge(a, b, rel)
    return graph


CUSTOMER = Relationship.CUSTOMER
PEER = Relationship.PEER


class TestPreferences:
    def test_customer_over_peer(self):
        # 1 can reach 4 via customer 2 or via peer 3; customer wins even
        # when both are one AS away from the destination.
        graph = _graph([
            (1, 2, CUSTOMER),
            (1, 3, PEER),
            (2, 4, CUSTOMER),
            (3, 4, CUSTOMER),
        ])
        assert BGPRouting(graph).as_path(1, 4) == [1, 2, 4]

    def test_customer_preferred_even_if_longer(self):
        graph = _graph([
            (1, 2, CUSTOMER),
            (2, 3, CUSTOMER),
            (3, 6, CUSTOMER),
            (1, 5, PEER),
            (5, 6, CUSTOMER),
        ])
        assert BGPRouting(graph).as_path(1, 6) == [1, 2, 3, 6]

    def test_peer_over_provider(self):
        graph = _graph([
            (3, 1, CUSTOMER),  # 3 is 1's provider
            (1, 2, PEER),
            (2, 4, CUSTOMER),
            (3, 4, CUSTOMER),
        ])
        assert BGPRouting(graph).as_path(1, 4) == [1, 2, 4]

    def test_shortest_within_class(self):
        graph = _graph([
            (1, 2, CUSTOMER),
            (2, 4, CUSTOMER),
            (1, 3, CUSTOMER),
            (3, 5, CUSTOMER),
            (5, 4, CUSTOMER),
        ])
        assert BGPRouting(graph).as_path(1, 4) == [1, 2, 4]

    def test_tie_break_lowest_next_hop(self):
        graph = _graph([
            (1, 2, CUSTOMER),
            (1, 3, CUSTOMER),
            (2, 4, CUSTOMER),
            (3, 4, CUSTOMER),
        ])
        assert BGPRouting(graph).as_path(1, 4) == [1, 2, 4]


class TestExportRules:
    def test_no_peer_to_peer_transit(self):
        # 1-2 peer, 2-3 peer: 1 must NOT reach 3 through 2 (peer routes are
        # not exported to other peers); there is no other route.
        graph = _graph([(1, 2, PEER), (2, 3, PEER)])
        assert BGPRouting(graph).as_path(1, 3) is None

    def test_no_valley(self):
        # 1 is customer of 2; 3 is customer of 2; 2 may carry 1->3
        # (down after up is fine)...
        graph = _graph([(2, 1, CUSTOMER), (2, 3, CUSTOMER)])
        assert BGPRouting(graph).as_path(1, 3) == [1, 2, 3]

    def test_provider_chain_up_then_down(self):
        graph = _graph([
            (2, 1, CUSTOMER),  # 2 provides 1
            (3, 2, CUSTOMER),  # 3 provides 2
            (3, 4, CUSTOMER),
            (4, 5, CUSTOMER),
        ])
        assert BGPRouting(graph).as_path(1, 5) == [1, 2, 3, 4, 5]

    def test_single_peer_edge_usable_to_peer_customers(self):
        graph = _graph([(1, 2, PEER), (2, 3, CUSTOMER)])
        assert BGPRouting(graph).as_path(1, 3) == [1, 2, 3]


class TestTableMechanics:
    def test_self_path(self):
        graph = _graph([(1, 2, PEER)])
        assert BGPRouting(graph).as_path(1, 1) == [1]

    def test_caching(self):
        graph = _graph([(1, 2, CUSTOMER)])
        routing = BGPRouting(graph)
        routing.as_path(1, 2)
        routing.as_path(2, 2)
        assert routing.cached_destinations() == 1  # dst=2 table reused

    def test_route_types_recorded(self):
        graph = _graph([(1, 2, CUSTOMER), (1, 3, PEER), (4, 1, CUSTOMER)])
        table = BGPRouting(graph).table_for(1)
        assert table.route_type[2] is RouteType.PROVIDER  # 2 reaches its provider 1
        assert table.route_type[3] is RouteType.PEER
        assert table.route_type[4] is RouteType.CUSTOMER  # 4 hears customer route

    def test_unknown_destination(self):
        graph = _graph([(1, 2, PEER)])
        with pytest.raises(KeyError):
            BGPRouting(graph).table_for(99)


class TestValleyFreeProperty:
    def test_generated_paths_are_valley_free(self, tiny_internet):
        """Every path in the generated world follows up* peer? down*."""
        graph = tiny_internet.graph
        routing = BGPRouting(graph)
        asns = graph.asns()
        sources = asns[::9]
        destinations = asns[::17]
        checked = 0
        for src in sources:
            for dst in destinations:
                if src == dst:
                    continue
                path = routing.as_path(src, dst)
                if path is None:
                    continue
                phase = "up"
                for a, b in zip(path, path[1:]):
                    rel = graph.relationship(a, b)
                    assert rel is not None, "path uses a non-edge"
                    if rel is Relationship.PROVIDER:
                        assert phase == "up", f"climb after descent in {path}"
                    elif rel is Relationship.PEER:
                        assert phase == "up", f"second peak in {path}"
                        phase = "down"
                    else:  # CUSTOMER: descending
                        phase = "down"
                checked += 1
        assert checked > 100
