"""Tests for the §4 assumption checks (AS hops, link diversity)."""

import pytest

from repro.core.assumptions import as_hop_distribution, link_diversity
from repro.core.matching import match_ndt_to_traceroutes
from repro.inference.mapit import MapIt
from repro.platforms.campaign import CampaignConfig


@pytest.fixture(scope="module")
def analyzed(small_study):
    result = small_study.run_campaign(
        CampaignConfig(seed=4, days=7, total_tests=3000)
    )
    report = match_ndt_to_traceroutes(result.ndt_records, result.traceroute_records)
    traces = {t.trace_id: t for t in result.traceroute_records}
    pairs = [
        (r, traces[report.matched[r.test_id]])
        for r in result.ndt_records
        if r.test_id in report.matched
    ]
    mapit_result = MapIt(small_study.oracle, small_study.internet.graph).infer(
        [t.router_hop_ips() for _r, t in pairs]
    )
    return small_study, pairs, mapit_result


class TestASHopDistribution:
    def test_fractions_sum_to_one(self, analyzed):
        study, pairs, mapit_result = analyzed
        rows = as_hop_distribution(pairs, mapit_result, study.oracle, study.org_names)
        assert rows
        for row in rows:
            total = row.one_hop_fraction + row.two_hop_fraction + row.more_fraction
            assert total == pytest.approx(1.0)
            assert row.total == row.one_hop + row.two_hops + row.more_hops

    def test_well_connected_isps_mostly_one_hop(self, analyzed):
        study, pairs, mapit_result = analyzed
        rows = {
            r.client_org: r
            for r in as_hop_distribution(pairs, mapit_result, study.oracle, study.org_names)
        }
        if "Comcast" in rows and rows["Comcast"].total > 50:
            assert rows["Comcast"].one_hop_fraction > 0.7

    def test_windstream_rarely_one_hop(self, analyzed):
        study, pairs, mapit_result = analyzed
        rows = {
            r.client_org: r
            for r in as_hop_distribution(pairs, mapit_result, study.oracle, study.org_names)
        }
        if "Windstream" in rows and rows["Windstream"].total > 30:
            assert rows["Windstream"].one_hop_fraction < 0.3


class TestLinkDiversity:
    def test_reports_links_with_counts(self, analyzed):
        study, pairs, mapit_result = analyzed
        level3 = study.oracle.canonical(study.internet.as_named("Level3").asn)
        reports = link_diversity(
            pairs, mapit_result, study.oracle,
            server_org_asn=level3, server_label="Level3",
            rdns=study.internet.rdns, org_names=study.org_names,
        )
        assert reports, "some ISP must have Level3 crossings"
        for report in reports.values():
            assert report.total_links() > 0
            for asn, usages in report.usages_by_client_asn.items():
                counts = report.tests_per_link(asn)
                assert counts == sorted(counts, reverse=True)
                assert all(c > 0 for c in counts)

    def test_dns_grouping_counts_parallels(self, analyzed):
        study, pairs, mapit_result = analyzed
        level3 = study.oracle.canonical(study.internet.as_named("Level3").asn)
        reports = link_diversity(
            pairs, mapit_result, study.oracle,
            server_org_asn=level3, server_label="Level3",
            rdns=study.internet.rdns, org_names=study.org_names,
        )
        cox = reports.get("Cox")
        if cox is None:
            pytest.skip("no Level3->Cox tests in this sample")
        groups = cox.dns_parallel_groups()
        # The Dallas hotspot should surface as a multi-link DNS group when
        # tests crossed it.
        if groups:
            assert max(groups.values()) >= 1
