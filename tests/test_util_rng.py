"""Tests for the deterministic RNG derivation discipline."""

from repro.util.rng import derive_random, derive_rng, derive_seed


class TestDeriveSeed:
    def test_same_inputs_same_seed(self):
        assert derive_seed(7, "topology") == derive_seed(7, "topology")

    def test_different_labels_differ(self):
        assert derive_seed(7, "topology") != derive_seed(7, "clients")

    def test_different_roots_differ(self):
        assert derive_seed(7, "topology") != derive_seed(8, "topology")

    def test_label_nesting_differs_from_concatenation(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed(7, "ab", "c") != derive_seed(7, "a", "bc")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(123456789, "x") < (1 << 64)


class TestStreams:
    def test_numpy_stream_reproducible(self):
        a = derive_rng(7, "test").random(5)
        b = derive_rng(7, "test").random(5)
        assert (a == b).all()

    def test_stdlib_stream_reproducible(self):
        a = [derive_random(7, "test").random() for _ in range(3)]
        b = [derive_random(7, "test").random() for _ in range(3)]
        assert a == b

    def test_streams_independent(self):
        # Consuming one stream must not perturb the other.
        first = derive_random(7, "a")
        second = derive_random(7, "b")
        first_values = [first.random() for _ in range(10)]
        fresh_second = derive_random(7, "b")
        assert [second.random() for _ in range(3)] == [
            fresh_second.random() for _ in range(3)
        ]
        assert first_values  # consumed without affecting "b"
