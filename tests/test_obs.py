"""The observability layer: metrics semantics, JSONL logs, span trees,
flow probes, the run manifest — and the invariant that none of it can
change a result.
"""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.core.coverage import collect_coverage_reports
from repro.obs import flowprobe, manifest, metrics, trace
from repro.obs.log import JSONLFormatter, configure_logging, get_logger
from repro.util import artifact_cache
from repro.util.parallel import parallel_map, pool_stats, validate_jobs


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with a quiet observability layer."""
    metrics.set_enabled(None)
    metrics.reset()
    trace.set_enabled(False)
    trace.reset()
    flowprobe.deactivate()
    yield
    metrics.set_enabled(None)
    metrics.reset()
    trace.set_enabled(False)
    trace.reset()
    flowprobe.deactivate()


class TestMetricsRegistry:
    def test_counter_semantics(self):
        c = metrics.counter("t.counter")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert metrics.snapshot()["t.counter"] == 5

    def test_gauge_semantics(self):
        g = metrics.gauge("t.gauge")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_semantics(self):
        h = metrics.histogram("t.hist")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snap = metrics.snapshot()["t.hist"]
        assert snap["count"] == 3
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == pytest.approx(2.0)

    def test_reset_keeps_object_identity(self):
        c = metrics.counter("t.reset")
        c.inc(7)
        metrics.reset()
        assert c.value == 0
        assert metrics.counter("t.reset") is c
        c.inc()
        assert c.value == 1

    def test_snapshot_skips_empty_metrics(self):
        metrics.counter("t.zero")
        metrics.histogram("t.empty")
        snap = metrics.snapshot()
        assert "t.zero" not in snap
        assert "t.empty" not in snap

    def test_disabled_mutations_are_noops(self):
        c = metrics.counter("t.off")
        h = metrics.histogram("t.off.h")
        metrics.set_enabled(False)
        c.inc(10)
        h.observe(1.0)
        metrics.set_enabled(None)
        assert c.value == 0
        assert h.count == 0

    def test_merge_snapshot_adds_counters_and_combines_histograms(self):
        c = metrics.counter("t.merge.c")
        h = metrics.histogram("t.merge.h")
        c.inc(2)
        h.observe(5.0)
        metrics.merge_snapshot(
            {"t.merge.c": 3, "t.merge.h": {"count": 2, "total": 4.0, "min": 1.0, "max": 3.0}}
        )
        assert c.value == 5
        assert h.count == 3
        assert h.min == 1.0
        assert h.max == 5.0

    def test_kind_conflict_raises(self):
        metrics.counter("t.kind")
        with pytest.raises(TypeError):
            metrics.gauge("t.kind")


class TestJSONLLogging:
    def test_round_trip_with_extra_fields(self):
        stream = io.StringIO()
        configure_logging(level="info", json_lines=True, stream=stream)
        get_logger("unit.test").info(
            "cache entry dropped", extra={"path": "/tmp/x.pkl", "kind": "campaign"}
        )
        line = stream.getvalue().strip()
        payload = json.loads(line)
        assert payload["msg"] == "cache entry dropped"
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.unit.test"
        assert payload["path"] == "/tmp/x.pkl"
        assert payload["kind"] == "campaign"
        assert isinstance(payload["ts"], float)

    def test_formatter_emits_one_object_per_line(self):
        formatter = JSONLFormatter()
        record = logging.LogRecord("repro.x", logging.WARNING, "f.py", 1, "msg %d", (7,), None)
        text = formatter.format(record)
        assert "\n" not in text
        assert json.loads(text)["msg"] == "msg 7"

    def test_configure_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            configure_logging(level="chatty")

    def test_get_logger_parents_under_repro(self):
        assert get_logger("core.pipeline").name == "repro.core.pipeline"
        assert get_logger("repro.net.tcp").name == "repro.net.tcp"


class TestSpanTree:
    def test_nested_spans_record_shape_and_durations(self):
        trace.set_enabled(True)
        with trace.span("outer", kind="test"):
            with trace.span("inner-a"):
                pass
            with trace.span("inner-b"):
                pass
        tree = trace.tree()
        assert trace.shape(tree) == [["outer", [["inner-a", []], ["inner-b", []]]]]
        assert tree[0]["duration_s"] >= 0.0
        assert tree[0]["meta"] == {"kind": "test"}

    def test_disabled_spans_record_nothing(self):
        with trace.span("ghost"):
            pass
        assert trace.tree() == []

    def test_attach_subtrees_grafts_under_active_span(self):
        trace.set_enabled(True)
        with trace.span("parent"):
            trace.attach_subtrees([{"name": "worker", "duration_s": 0.5}])
        assert trace.shape() == [["parent", [["worker", []]]]]

    def test_render_includes_names_and_durations(self):
        trace.set_enabled(True)
        with trace.span("phase"):
            pass
        text = trace.render()
        assert "phase" in text
        assert "s" in text

    def test_render_shows_child_share_of_parent(self):
        tree = [{"name": "suite", "duration_s": 4.0, "children": [
            {"name": "exp", "duration_s": 1.0, "children": []},
        ]}]
        text = trace.render(tree)
        lines = text.splitlines()
        assert "(" not in lines[0]  # roots have no parent to be a share of
        assert "exp" in lines[1] and "( 25.0%)" in lines[1]

    def test_span_shape_identical_across_jobs(self, small_study, monkeypatch):
        # The determinism invariant: the merged span tree's shape (names
        # and nesting, in order) does not depend on --jobs.
        monkeypatch.setenv("REPRO_CACHE", "0")
        shapes = {}
        for jobs in (1, 4):
            trace.set_enabled(True)
            trace.reset()
            collect_coverage_reports(small_study, alexa_count=40, jobs=jobs)
            shapes[jobs] = trace.shape()
        assert shapes[1] == shapes[4]
        assert shapes[1], "tracing recorded no spans"
        assert shapes[1][0][0] == "coverage_sweep"


class TestFlowProbe:
    def test_synthesized_series_shape(self):
        ticks = flowprobe.synthesize_ticks(
            throughput_bps=20e6, rtt_min_ms=20.0, rtt_max_ms=45.0,
            access_limited=False, duration_s=10.0, tick_s=0.1,
        )
        assert len(ticks) == 100
        assert ticks[0].t_s == 0.0
        assert ticks[0].cwnd_pkts == flowprobe.INITIAL_CWND
        times = [t.t_s for t in ticks]
        assert times == sorted(times)
        for tick in ticks:
            assert tick.cwnd_pkts >= 2.0
            assert tick.ssthresh_pkts >= 2.0
            assert 20.0 <= tick.srtt_ms <= 45.0
            assert tick.throughput_bps > 0

    def test_access_limited_flow_settles_at_window_and_max_rtt(self):
        ticks = flowprobe.synthesize_ticks(
            throughput_bps=50e6, rtt_min_ms=10.0, rtt_max_ms=35.0,
            access_limited=True, duration_s=10.0, tick_s=0.1,
        )
        tail = ticks[-10:]
        assert len({round(t.cwnd_pkts, 3) for t in tail}) == 1  # stable window
        assert tail[-1].srtt_ms == pytest.approx(35.0)  # self-induced buffer

    def test_loss_limited_flow_shows_sawtooth(self):
        ticks = flowprobe.synthesize_ticks(
            throughput_bps=5e6, rtt_min_ms=30.0, rtt_max_ms=40.0,
            access_limited=False, duration_s=10.0, tick_s=0.1,
        )
        cwnds = [t.cwnd_pkts for t in ticks[20:]]
        drops = sum(1 for a, b in zip(cwnds, cwnds[1:]) if b < a)
        assert drops >= 1  # at least one multiplicative decrease

    def test_recorder_selector_and_cap(self):
        recorder = flowprobe.FlowProbeRecorder(
            selector=lambda key: "yes" in str(key), max_flows=1
        )
        assert recorder.wants("yes-1")
        assert not recorder.wants("no-1")
        recorder.record("yes-1", throughput_bps=1e6, rtt_min_ms=10, rtt_max_ms=20,
                        access_limited=True)
        assert not recorder.wants("yes-2")  # cap reached
        assert recorder.wants("yes-1")  # existing key may be re-recorded
        assert [s.flow_id for s in recorder.series()] == ["yes-1"]

    def test_probe_hook_records_without_changing_observation(self, small_study):
        tcp = small_study.tcp.reseeded(4242)
        client = small_study.population.all_clients()[0]
        server = small_study.mlab.servers()[0]
        path = small_study.forwarder.route_flow(
            server.asn, server.city, client.asn, client.city, ("probe-test", 1)
        )
        assert path is not None
        baseline = tcp.reseeded(4242).observe(
            path, hour=20.0, access_rate_bps=client.plan_rate_bps, with_noise=False
        )
        recorder = flowprobe.activate(flowprobe.FlowProbeRecorder())
        probed = tcp.reseeded(4242).observe(
            path, hour=20.0, access_rate_bps=client.plan_rate_bps, with_noise=False,
            probe_key="probe-test",
        )
        flowprobe.deactivate()
        assert probed == baseline
        series = recorder.series()
        assert len(series) == 1
        assert series[0].flow_id == "probe-test"
        assert len(series[0].ticks) == 100
        assert series[0].meta["bottleneck"] == baseline.bottleneck_kind


class TestManifest:
    def _payload(self):
        return manifest.build_manifest(
            ids=["fig1"],
            jobs=2,
            seed=7,
            config_digest="abc123",
            experiments={"fig1": {"status": "ok", "duration_s": 1.2}},
            metrics_snapshot={"artifact_cache.hits": 3, "artifact_cache.misses": 1},
            pool_stats={"workers": 2, "units": 1, "fallback": None},
            span_tree=[{"name": "suite", "duration_s": 1.3}],
            wall_s=1.3,
        )

    def test_schema_fields(self):
        payload = self._payload()
        assert payload["schema"] == manifest.MANIFEST_SCHEMA
        assert payload["ids"] == ["fig1"]
        assert payload["jobs"] == 2
        assert payload["seed"] == 7
        assert payload["cache"] == {"hits": 3, "misses": 1, "corrupt_drops": 0}
        assert payload["experiments"]["fig1"]["duration_s"] == 1.2
        assert payload["pool"]["workers"] == 2
        assert payload["trace"][0]["name"] == "suite"
        assert payload["flow_probes"] == []

    def test_resource_usage_present_even_with_metrics_off(self):
        metrics.set_enabled(False)
        payload = self._payload()
        assert payload["resource"]["peak_rss_bytes"] > 0
        assert payload["resource"]["ru_utime_s"] >= 0.0
        assert payload["phases"] == [{"phase": "suite", "wall_s": 1.3}]

    def test_phase_walls_flatten_top_two_levels(self):
        tree = [{"name": "suite", "duration_s": 3.0, "children": [
            {"name": "experiment:fig1", "duration_s": 2.0, "children": [
                {"name": "campaign", "duration_s": 1.9, "children": []},
            ]},
        ]}]
        rows = manifest.phase_walls(tree)
        assert rows == [
            {"phase": "suite", "wall_s": 3.0},
            {"phase": "suite/experiment:fig1", "wall_s": 2.0},
        ]

    def test_optional_sections_only_when_present(self):
        bare = self._payload()
        assert "timeseries" not in bare and "profile" not in bare
        rich = manifest.build_manifest(
            ids=["fig1"], jobs=1, seed=7, config_digest="abc",
            experiments={}, metrics_snapshot={}, pool_stats={},
            span_tree=[], wall_s=0.1,
            timeseries_snapshot={"pipeline.tests_per_s": {"samples": [[1.0, 2.0]]}},
            profile_summary={"hz": 100.0, "samples": 10},
        )
        assert rich["timeseries"]["pipeline.tests_per_s"]["samples"]
        assert rich["profile"]["samples"] == 10

    def test_write_creates_missing_directory(self, tmp_path):
        target = tmp_path / "deep" / "obs"
        path = manifest.write_manifest(self._payload(), target)
        assert path.exists()
        assert manifest.write_trace([], target).exists()

    def test_write_round_trip(self, tmp_path):
        path = manifest.write_manifest(self._payload(), tmp_path)
        assert path.name == "run_manifest.json"
        assert json.loads(path.read_text())["schema"] == manifest.MANIFEST_SCHEMA
        trace_path = manifest.write_trace([{"name": "suite"}], tmp_path)
        trace_payload = json.loads(trace_path.read_text())
        assert trace_payload["schema"] == manifest.TRACE_SCHEMA
        assert trace_payload["spans"][0]["name"] == "suite"


class TestPoolStats:
    def test_serial_fallback_reason(self):
        parallel_map(_identity, [1, 2, 3], jobs=1)
        stats = pool_stats()
        assert stats["fallback"] == "jobs<=1"
        assert stats["units"] == 3

    def test_single_unit_reason(self):
        parallel_map(_identity, [1], jobs=4)
        assert pool_stats()["fallback"] == "single-unit"

    def test_pool_run_records_workers_and_skew(self, monkeypatch):
        # Oversubscribe so the real pool machinery runs even on one core.
        monkeypatch.setenv("REPRO_POOL_OVERSUBSCRIBE", "1")
        out = parallel_map(_identity, list(range(8)), jobs=2)
        assert out == list(range(8))
        stats = pool_stats()
        assert stats["fallback"] is None
        assert stats["workers"] == 2
        assert stats["units"] == 8
        assert stats["requested_jobs"] == 2
        assert stats["cpu_clamped"] is False
        assert stats["chunk_skew"] is None or stats["chunk_skew"] >= 1.0

    def test_cpu_clamp_records_and_falls_back(self, monkeypatch):
        from repro.util import parallel as parallel_module

        monkeypatch.delenv("REPRO_POOL_OVERSUBSCRIBE", raising=False)
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 1)
        out = parallel_map(_identity, list(range(4)), jobs=4)
        assert out == list(range(4))
        stats = pool_stats()
        assert stats["fallback"] == "cpu-clamp"
        assert stats["workers"] == 1
        assert stats["requested_jobs"] == 4
        assert stats["cpu_clamped"] is True

    def test_oversubscribe_env_disables_clamp(self, monkeypatch):
        from repro.util import parallel as parallel_module

        monkeypatch.setenv("REPRO_POOL_OVERSUBSCRIBE", "1")
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 1)
        out = parallel_map(_identity, list(range(4)), jobs=2)
        assert out == list(range(4))
        stats = pool_stats()
        assert stats["fallback"] is None
        assert stats["workers"] == 2
        assert stats["cpu_clamped"] is False

    def test_validate_jobs(self):
        assert validate_jobs("4") == 4
        with pytest.raises(ValueError):
            validate_jobs(0)
        with pytest.raises(ValueError):
            validate_jobs(-2)
        with pytest.raises(ValueError):
            validate_jobs("many")


class TestCacheObservability:
    def test_corrupt_entry_warns_and_counts(self, tmp_path, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # configure_logging() (run by CLI tests in the same process) turns
        # propagation off; caplog listens on the root logger, so restore it.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        artifact_cache.set_enabled(True)
        corrupt = metrics.counter("artifact_cache.corrupt_drops")
        before = corrupt.value
        try:
            key = artifact_cache.artifact_key("unit", "obs")
            artifact_cache.store("unit", key, {"v": 1})
            path = next(tmp_path.glob("unit-*.pkl"))
            path.write_bytes(b"not a pickle")
            with caplog.at_level(logging.WARNING, logger="repro"):
                assert artifact_cache.load("unit", key) is None
        finally:
            artifact_cache.set_enabled(None)
        assert corrupt.value == before + 1
        assert any("corrupt" in rec.message for rec in caplog.records)
        assert not path.exists()

    def test_hit_and_miss_counters(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        artifact_cache.set_enabled(True)
        hits = metrics.counter("artifact_cache.hits")
        misses = metrics.counter("artifact_cache.misses")
        h0, m0 = hits.value, misses.value
        try:
            key = artifact_cache.artifact_key("unit", "hm")
            assert artifact_cache.load("unit", key) is None
            artifact_cache.store("unit", key, [1, 2, 3])
            assert artifact_cache.load("unit", key) == [1, 2, 3]
        finally:
            artifact_cache.set_enabled(None)
        assert misses.value == m0 + 1
        assert hits.value == h0 + 1


def _identity(x):
    return x
