"""Slow tier: every EXPERIMENTS.md shape gate against the real artifacts.

This is ``python -m repro validate --seed 7`` as a pytest tier — the
full-scale seed-7 study, every summary experiment, every gate. With a
warm artifact cache (`.repro-cache`) the sweep takes ~1 minute; cold it
re-runs the campaigns. Deselected from tier 1 via the ``slow`` marker.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import StudyConfig, build_study
from repro.experiments import EXPERIMENTS, SUMMARY_EXPERIMENTS
from repro.validate import run_gates, validate_world

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def full_study():
    return build_study(StudyConfig(seed=7))


@pytest.fixture(scope="module")
def summary_results(full_study):
    return {
        experiment_id: EXPERIMENTS[experiment_id](full_study)
        for experiment_id in SUMMARY_EXPERIMENTS
    }


def test_full_scale_world_satisfies_every_contract(full_study):
    report = validate_world(full_study)
    assert report.ok, report.render()


def test_every_summary_verdict_gate_passes(summary_results):
    report = run_gates(summary_results)
    assert report.ok, report.render()
    passed, failed, skipped = report.counts()
    assert skipped == 0
    assert passed == len(SUMMARY_EXPERIMENTS)


@pytest.mark.parametrize("experiment_id", SUMMARY_EXPERIMENTS)
def test_gate_passes_standalone(experiment_id, summary_results):
    """Each gate also holds without the rest of the sweep for context."""
    from repro.validate.gates import gates_for, run_gate

    for entry in gates_for(experiment_id):
        check = run_gate(entry.name, summary_results[experiment_id])
        assert check.passed, check.violations
