"""Tests for service-plan stratification."""

import math

import pytest

from repro.measurement.records import NDTRecord
from repro.stats.stratification import estimate_plan_tiers, stratify


def _record(test_id, client_ip, hour, mbps):
    return NDTRecord(
        test_id=test_id, timestamp_s=hour * 3600.0, local_hour=hour,
        client_ip=client_ip, server_id=1, server_ip=1, server_asn=1,
        server_city="atl", download_bps=mbps * 1e6, rtt_ms=20.0,
        retx_rate=0.0, congestion_signals=0, gt_client_asn=2,
        gt_client_org="X", gt_crossed_links=(), gt_bottleneck_link=None,
        gt_bottleneck_kind="access",
    )


def _flat_corpus():
    """Two tiers (20 and 100 Mbps), both achieving their plan all day."""
    records = []
    tid = 0
    for client, plan in ((1, 20.0), (2, 100.0)):
        for hour in list(range(9, 17)) + [19, 20, 21, 22]:
            for _ in range(4):
                tid += 1
                records.append(_record(tid, client, hour + 0.5, plan))
    return records


class TestPlanEstimation:
    def test_offpeak_max_used(self):
        records = [
            _record(1, 9, 10.0, 50.0),
            _record(2, 9, 21.0, 5.0),  # congested at peak
        ]
        tiers = estimate_plan_tiers(records)
        assert tiers[9] == pytest.approx(50e6)

    def test_peak_only_client_falls_back(self):
        records = [_record(1, 9, 21.0, 5.0)]
        assert estimate_plan_tiers(records)[9] == pytest.approx(5e6)


class TestStratify:
    def test_flat_corpus_no_drop(self):
        stratified = stratify(_flat_corpus())
        assert stratified.utilization_drop() == pytest.approx(0.0, abs=1e-9)

    def test_weights_sum_to_one(self):
        stratified = stratify(_flat_corpus())
        assert sum(stratified.stratum_weights.values()) == pytest.approx(1.0)

    def test_real_path_effect_survives(self):
        # Both tiers halve at peak: a genuine path effect.
        records = []
        tid = 0
        for client, plan in ((1, 20.0), (2, 100.0)):
            for hour in range(9, 17):
                for _ in range(4):
                    tid += 1
                    records.append(_record(tid, client, hour + 0.5, plan))
            for hour in (19, 20, 21, 22):
                for _ in range(4):
                    tid += 1
                    records.append(_record(tid, client, hour + 0.5, plan / 2))
        stratified = stratify(records)
        assert stratified.utilization_drop() == pytest.approx(0.5, abs=0.05)

    def test_sample_mix_bias_removed(self):
        # Slow tier tests only in the evening, fast tier only at midday:
        # the naive aggregate collapses, the stratified one must not.
        from repro.core.congestion import diurnal_series

        records = []
        tid = 0
        for hour in range(9, 17):
            for _ in range(6):
                tid += 1
                records.append(_record(tid, 2, hour + 0.5, 100.0))  # fast
        for hour in (19, 20, 21, 22):
            for _ in range(6):
                tid += 1
                records.append(_record(tid, 1, hour + 0.5, 20.0))  # slow
        # Give each client one off-peak sample so tiers are estimable.
        records.append(_record(tid + 1, 1, 10.5, 20.0))
        records.append(_record(tid + 2, 2, 10.5, 100.0))

        naive = diurnal_series(records).relative_peak_drop()
        stratified = stratify(records).utilization_drop()
        assert naive > 0.5
        assert stratified < 0.15

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stratify([])
