"""Ring-buffer time series and the cadence sampler.

The invariants that matter: rings are bounded (a week-long campaign
cannot grow memory), rate probes are None on their first tick (no fake
zero-rate sample), probe failures never propagate (telemetry cannot
take a run down), and nothing records unless a sampler ticks.
"""

from __future__ import annotations

import pytest

from repro.obs import metrics, timeseries


@pytest.fixture(autouse=True)
def _clean_state():
    metrics.set_enabled(None)
    metrics.reset()
    timeseries.reset()
    yield
    metrics.set_enabled(None)
    metrics.reset()
    timeseries.reset()


class TestRingSeries:
    def test_bounded_eviction_keeps_newest(self):
        ring = timeseries.RingSeries("r", capacity=3)
        for value in range(5):
            ring.record(float(value), t=float(value))
        assert len(ring) == 3
        assert ring.samples() == [(2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]
        assert ring.last() == (4.0, 4.0)

    def test_partial_fill_oldest_first(self):
        ring = timeseries.RingSeries("r", capacity=8)
        ring.record(1.0, t=10.0)
        ring.record(2.0, t=11.0)
        assert ring.samples() == [(10.0, 1.0), (11.0, 2.0)]

    def test_empty_ring(self):
        ring = timeseries.RingSeries("r", capacity=4)
        assert ring.last() is None
        assert ring.samples() == []
        assert len(ring) == 0

    def test_to_dict_round_trips_samples(self):
        ring = timeseries.RingSeries("rates", capacity=4)
        ring.record(7.5, t=100.0)
        payload = ring.to_dict()
        assert payload["name"] == "rates"
        assert payload["capacity"] == 4
        assert payload["samples"] == [[100.0, 7.5]]

    def test_registry_identity_and_snapshot_skips_empty(self):
        ring = timeseries.series("a.rate", capacity=4)
        assert timeseries.series("a.rate") is ring
        timeseries.series("b.rate", capacity=4)  # never recorded
        ring.record(1.0, t=1.0)
        snap = timeseries.snapshot()
        assert "a.rate" in snap
        assert "b.rate" not in snap

    def test_reset_drops_samples_in_place(self):
        ring = timeseries.series("c.rate", capacity=4)
        ring.record(1.0, t=1.0)
        timeseries.reset()
        assert timeseries.series("c.rate") is ring
        assert len(ring) == 0


class TestEnvDefaults:
    def test_interval_default_and_floor(self, monkeypatch):
        monkeypatch.delenv("REPRO_TS_INTERVAL", raising=False)
        assert timeseries.default_interval_s() == 1.0
        monkeypatch.setenv("REPRO_TS_INTERVAL", "0.0001")
        assert timeseries.default_interval_s() == 0.01
        monkeypatch.setenv("REPRO_TS_INTERVAL", "junk")
        assert timeseries.default_interval_s() == 1.0

    def test_capacity_default_and_floor(self, monkeypatch):
        monkeypatch.delenv("REPRO_TS_CAPACITY", raising=False)
        assert timeseries.default_capacity() == 512
        monkeypatch.setenv("REPRO_TS_CAPACITY", "1")
        assert timeseries.default_capacity() == 2
        monkeypatch.setenv("REPRO_TS_CAPACITY", "junk")
        assert timeseries.default_capacity() == 512


class TestProbes:
    def test_counter_rate_first_tick_is_none(self):
        counter = metrics.counter("ts_test.events")
        probe = timeseries.counter_rate(counter)
        assert probe() is None
        counter.inc(10)
        rate = probe()
        assert rate is not None and rate > 0

    def test_ratio_none_without_traffic(self):
        hits = metrics.counter("ts_test.hits")
        misses = metrics.counter("ts_test.misses")
        probe = timeseries.ratio(hits, misses)
        assert probe() is None
        hits.inc(3)
        misses.inc(1)
        assert probe() == pytest.approx(0.75)

    def test_rss_probe_returns_positive_bytes(self):
        rss = timeseries.rss_bytes()
        assert rss is not None and rss > 0


class TestSampler:
    def test_tick_records_non_none_samples(self):
        sampler = timeseries.Sampler(interval_s=60.0)
        ring = sampler.add("s.value", lambda: 42.0, capacity=4)
        sampler.add("s.skipped", lambda: None, capacity=4)
        sampler.tick(t=5.0)
        assert ring.samples() == [(5.0, 42.0)]
        assert len(timeseries.series("s.skipped")) == 0
        assert sampler.ticks == 1

    def test_probe_exception_is_dropped_not_raised(self):
        sampler = timeseries.Sampler(interval_s=60.0)
        ring = sampler.add("s.ok", lambda: 1.0, capacity=4)

        def boom():
            raise RuntimeError("probe exploded")

        sampler.add("s.bad", boom, capacity=4)
        sampler.tick(t=1.0)  # must not raise
        assert len(ring) == 1

    def test_start_stop_lifecycle(self):
        sampler = timeseries.Sampler(interval_s=0.01)
        sampler.add("s.live", lambda: 1.0, capacity=8)
        sampler.start()
        assert sampler.running
        assert sampler.start() is sampler  # idempotent
        sampler.stop()
        assert not sampler.running

    def test_default_sampler_covers_pipeline_phases(self):
        sampler = timeseries.default_sampler(interval_s=60.0)
        # Warm the rate probes, generate traffic, tick again.
        sampler.tick(t=1.0)
        metrics.counter("tcp.flows_simulated").inc(100)
        metrics.counter("trace.batch.requests").inc(10)
        metrics.gauge("parallel.inflight_units").set(4)
        sampler.tick(t=2.0)
        snap = timeseries.snapshot()
        assert "pipeline.tests_per_s" in snap
        assert "pipeline.traces_per_s" in snap
        assert "pool.inflight_units" in snap
        assert "proc.rss_bytes" in snap
        assert snap["pool.inflight_units"]["samples"][-1][1] == 4.0
