"""Tests for the TCP throughput / RTT model."""

import pytest

from repro.net.link import ProvisioningConfig, CongestionDirective, provision_links
from repro.net.tcp import TCPModel
from repro.routing.bgp import BGPRouting
from repro.routing.forwarding import Forwarder
from repro.util.units import MBPS


@pytest.fixture(scope="module")
def world(tiny_internet):
    links = provision_links(
        tiny_internet,
        ProvisioningConfig(seed=7, directives=(CongestionDirective("GTT", "ATT", peak_load=1.35),)),
    )
    forwarder = Forwarder(tiny_internet, BGPRouting(tiny_internet.graph))
    return tiny_internet, links, forwarder, TCPModel(links, seed=7)


class TestMathis:
    def test_decreasing_in_loss(self, world):
        _net, _links, _fwd, tcp = world
        assert tcp.mathis_ceiling_bps(30, 1e-4) > tcp.mathis_ceiling_bps(30, 1e-2)

    def test_decreasing_in_rtt(self, world):
        _net, _links, _fwd, tcp = world
        assert tcp.mathis_ceiling_bps(10, 1e-4) > tcp.mathis_ceiling_bps(100, 1e-4)

    def test_loss_floor_applied(self, world):
        _net, _links, _fwd, tcp = world
        assert tcp.mathis_ceiling_bps(30, 0.0) == tcp.mathis_ceiling_bps(30, 1e-9)


class TestObserve:
    def _path(self, world, dst_name="ATT"):
        net, _links, fwd, _tcp = world
        gtt = net.as_named("GTT")
        dst = net.as_named(dst_name)
        return fwd.route_flow(gtt.asn, "atl", dst.asn, dst.home_cities[0], flow_key="t")

    def test_access_limited_off_peak(self, world):
        net, _links, _fwd, tcp = world
        path = self._path(world)
        obs = tcp.observe(path, hour=4.0, access_rate_bps=20 * MBPS, with_noise=False)
        assert obs.bottleneck_kind == "access"
        assert obs.throughput_bps == pytest.approx(20 * MBPS, rel=0.01)

    def test_congested_peak_collapses(self, world):
        _net, _links, _fwd, tcp = world
        path = self._path(world)
        peak = tcp.observe(path, hour=21.0, access_rate_bps=50 * MBPS, with_noise=False)
        off = tcp.observe(path, hour=4.0, access_rate_bps=50 * MBPS, with_noise=False)
        assert peak.throughput_bps < 0.2 * off.throughput_bps
        assert peak.rtt_ms > off.rtt_ms  # queueing delay at the hot link

    def test_home_factor_degrades(self, world):
        _net, _links, _fwd, tcp = world
        path = self._path(world, "Comcast")
        good = tcp.observe(path, 4.0, 50 * MBPS, home_factor=1.0, with_noise=False)
        bad = tcp.observe(path, 4.0, 50 * MBPS, home_factor=0.4, with_noise=False)
        assert bad.throughput_bps < good.throughput_bps

    def test_access_loss_hurts(self, world):
        _net, _links, _fwd, tcp = world
        path = self._path(world, "Comcast")
        clean = tcp.observe(path, 4.0, 200 * MBPS, with_noise=False)
        lossy = tcp.observe(path, 4.0, 200 * MBPS, access_loss=0.02, with_noise=False)
        assert lossy.throughput_bps < clean.throughput_bps
        assert lossy.retx_rate > clean.retx_rate

    def test_noise_respects_plan_cap(self, world):
        _net, _links, _fwd, tcp = world
        path = self._path(world, "Comcast")
        for _ in range(50):
            obs = tcp.observe(path, 4.0, 30 * MBPS)
            assert obs.throughput_bps <= 30 * MBPS + 1

    def test_throughput_floor(self, world):
        _net, _links, _fwd, tcp = world
        path = self._path(world)
        obs = tcp.observe(path, 21.0, 0.1 * MBPS, home_factor=0.05, with_noise=False)
        assert obs.throughput_bps >= 10_000.0

    def test_base_rtt_scales_with_geography(self, world):
        net, _links, fwd, tcp = world
        gtt = net.as_named("GTT")
        comcast = net.as_named("Comcast")
        near_city = comcast.home_cities[0]
        near = fwd.route_flow(gtt.asn, near_city, comcast.asn, near_city, flow_key="n")
        far = fwd.route_flow(gtt.asn, "sea", comcast.asn, near_city, flow_key="f")
        if near is not None and far is not None and near_city != "sea":
            assert tcp.base_rtt_ms(far) >= tcp.base_rtt_ms(near)
