"""Tests for NDT↔traceroute matching (§4.1 semantics)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import match_ndt_to_traceroutes
from repro.measurement.records import NDTRecord, TraceHop, TracerouteRecord


def _ndt(test_id, t, client_ip=100):
    return NDTRecord(
        test_id=test_id, timestamp_s=t, local_hour=(t % 86400) / 3600,
        client_ip=client_ip, server_id=1, server_ip=1, server_asn=1,
        server_city="atl", download_bps=1e6, rtt_ms=10.0, retx_rate=0.0,
        congestion_signals=0, gt_client_asn=2, gt_client_org="X",
        gt_crossed_links=(), gt_bottleneck_link=None, gt_bottleneck_kind="access",
    )


def _trace(trace_id, t, dst_ip=100):
    return TracerouteRecord(
        trace_id=trace_id, timestamp_s=t, src_ip=1, src_asn=1, dst_ip=dst_ip,
        hops=(TraceHop(1, 5, 1.0),), reached_destination=False,
        gt_crossed_links=(), gt_as_path=(1, 2),
    )


class TestAfterWindow:
    def test_matches_first_in_window(self):
        report = match_ndt_to_traceroutes(
            [_ndt(1, 100.0)], [_trace(10, 150.0), _trace(11, 200.0)]
        )
        assert report.matched == {1: 10}

    def test_before_test_not_matched(self):
        report = match_ndt_to_traceroutes([_ndt(1, 100.0)], [_trace(10, 50.0)])
        assert report.matched == {}

    def test_outside_window_not_matched(self):
        report = match_ndt_to_traceroutes(
            [_ndt(1, 100.0)], [_trace(10, 800.0)], window_s=600.0
        )
        assert report.matched == {}

    def test_different_client_not_matched(self):
        report = match_ndt_to_traceroutes(
            [_ndt(1, 100.0, client_ip=1)], [_trace(10, 150.0, dst_ip=2)]
        )
        assert report.matched == {}

    def test_one_trace_can_serve_two_tests(self):
        # The paper's rule has no exclusivity: both tests find the trace.
        report = match_ndt_to_traceroutes(
            [_ndt(1, 100.0), _ndt(2, 120.0)], [_trace(10, 150.0)]
        )
        assert report.matched == {1: 10, 2: 10}


class TestEitherWindow:
    def test_nearest_wins(self):
        report = match_ndt_to_traceroutes(
            [_ndt(1, 100.0)],
            [_trace(10, 60.0), _trace(11, 400.0)],
            mode="either",
        )
        assert report.matched == {1: 10}

    def test_either_is_superset_of_after(self):
        tests = [_ndt(1, 100.0), _ndt(2, 1000.0)]
        traces = [_trace(10, 50.0), _trace(11, 1100.0)]
        after = match_ndt_to_traceroutes(tests, traces, mode="after")
        either = match_ndt_to_traceroutes(tests, traces, mode="either")
        assert set(after.matched) <= set(either.matched)

    def test_bad_mode(self):
        import pytest

        with pytest.raises(ValueError):
            match_ndt_to_traceroutes([], [], mode="sideways")


class TestFractionAndProperties:
    def test_fraction(self):
        report = match_ndt_to_traceroutes(
            [_ndt(1, 100.0), _ndt(2, 5000.0)], [_trace(10, 150.0)]
        )
        assert report.matched_fraction == 0.5

    def test_empty(self):
        report = match_ndt_to_traceroutes([], [])
        assert report.matched_fraction == 0.0

    @given(
        st.lists(st.floats(min_value=0, max_value=10_000), min_size=1, max_size=20),
        st.lists(st.floats(min_value=0, max_value=10_000), min_size=0, max_size=20),
        st.sampled_from([60.0, 300.0, 600.0]),
    )
    @settings(max_examples=60)
    def test_wider_window_never_matches_fewer(self, test_times, trace_times, window):
        tests = [_ndt(i + 1, t) for i, t in enumerate(sorted(test_times))]
        traces = [_trace(100 + i, t) for i, t in enumerate(sorted(trace_times))]
        narrow = match_ndt_to_traceroutes(tests, traces, window_s=window)
        wide = match_ndt_to_traceroutes(tests, traces, window_s=window * 2)
        assert set(narrow.matched) <= set(wide.matched)

    @given(
        st.lists(st.floats(min_value=0, max_value=10_000), min_size=1, max_size=20),
        st.lists(st.floats(min_value=0, max_value=10_000), min_size=0, max_size=20),
    )
    @settings(max_examples=60)
    def test_either_mode_superset_property(self, test_times, trace_times):
        tests = [_ndt(i + 1, t) for i, t in enumerate(sorted(test_times))]
        traces = [_trace(100 + i, t) for i, t in enumerate(sorted(trace_times))]
        after = match_ndt_to_traceroutes(tests, traces)
        either = match_ndt_to_traceroutes(tests, traces, mode="either")
        assert set(after.matched) <= set(either.matched)
