"""Tests for the study builder and experiment plumbing."""

import pytest

from repro.core.pipeline import Study, StudyConfig, build_study, clear_study_cache
from repro.experiments import EXPERIMENTS
from repro.experiments.base import ExperimentResult
from tests.conftest import SMALL_STUDY_CONFIG


class TestBuildStudy:
    def test_cached_identity(self, small_study):
        assert build_study(SMALL_STUDY_CONFIG) is small_study

    def test_components_wired(self, small_study):
        assert small_study.internet.summary()["ases"] > 50
        assert len(small_study.mlab.servers()) == SMALL_STUDY_CONFIG.mlab_server_count
        assert len(small_study.speedtest.servers()) == SMALL_STUDY_CONFIG.speedtest_server_count
        assert small_study.population.all_clients()

    def test_org_labels(self, small_study):
        comcast = small_study.internet.as_named("Comcast")
        assert small_study.org_label(comcast.asn) == "Comcast"
        siblings = small_study.internet.orgs.siblings(comcast.asn)
        for sibling in siblings:
            assert small_study.org_label(sibling) == "Comcast"

    def test_directives_provisioned(self, small_study):
        # The default scenario must congest at least one GTT-ATT link if
        # the adjacency exists.
        gtt = small_study.internet.as_named("GTT")
        att = small_study.internet.as_named("ATT")
        links = small_study.internet.fabric.links_between(gtt.asn, att.asn)
        if not links:
            pytest.skip("no GTT-ATT adjacency at this seed")
        assert any(
            small_study.links.params(l.link_id).congested for l in links
        )


class TestExperimentRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "tab1", "tab2", "tab3", "fig1", "fig2", "fig3", "fig4", "fig5",
            "sec41", "sec54", "sec62", "val-mapit", "val-bdrmap", "abl-tomo",
        }
        assert expected <= set(EXPERIMENTS)

    def test_tab1_runs(self):
        result = EXPERIMENTS["tab1"]()
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == 12
        assert result.rows[0][0] == "Comcast"

    def test_result_rendering(self):
        result = ExperimentResult(
            experiment_id="x",
            title="demo",
            headers=["a", "b"],
            rows=[[1, 2.5], ["long-cell", 3]],
            notes={"k": "v"},
        )
        text = result.to_text()
        assert "demo" in text
        assert "long-cell" in text
        assert "note k: v" in text
