"""Tests for router-level forwarding: continuity, ECMP, egress policy."""

from collections import Counter

from repro.routing.bgp import BGPRouting
from repro.routing.forwarding import Forwarder, flow_hash


class TestFlowHash:
    def test_stable(self):
        assert flow_hash("a", 1, 2) == flow_hash("a", 1, 2)

    def test_sensitive_to_parts(self):
        assert flow_hash("a", 1, 2) != flow_hash("a", 2, 1)


class TestRouteFlow:
    def _forwarder(self, internet):
        return Forwarder(internet, BGPRouting(internet.graph))

    def test_path_hops_follow_as_path(self, tiny_internet):
        fwd = self._forwarder(tiny_internet)
        level3 = tiny_internet.as_named("Level3")
        cox = tiny_internet.as_named("Cox")
        path = fwd.route_flow(level3.asn, "atl", cox.asn, "dfw", flow_key="t")
        assert path is not None
        hop_asns = [h.asn for h in path.hops]
        # Collapse consecutive duplicates; must equal the AS path.
        collapsed = [hop_asns[0]]
        for asn in hop_asns[1:]:
            if asn != collapsed[-1]:
                collapsed.append(asn)
        assert tuple(collapsed) == path.as_path

    def test_crossed_links_connect_adjacent_ases(self, tiny_internet):
        fwd = self._forwarder(tiny_internet)
        level3 = tiny_internet.as_named("Level3")
        att = tiny_internet.as_named("ATT")
        path = fwd.route_flow(level3.asn, "nyc", att.asn, "lax", flow_key="x")
        assert path is not None
        assert len(path.crossed_links) == len(path.as_path) - 1
        for link_id, (a, b) in zip(path.crossed_links, zip(path.as_path, path.as_path[1:])):
            link = tiny_internet.fabric.interconnect(link_id)
            assert {link.a_asn, link.b_asn} == {a, b}

    def test_same_flow_key_same_path(self, tiny_internet):
        fwd = self._forwarder(tiny_internet)
        level3 = tiny_internet.as_named("Level3")
        cox = tiny_internet.as_named("Cox")
        one = fwd.route_flow(level3.asn, "dfw", cox.asn, "dfw", flow_key="same")
        two = fwd.route_flow(level3.asn, "dfw", cox.asn, "dfw", flow_key="same")
        assert one.crossed_links == two.crossed_links
        assert [h.reply_ip for h in one.hops] == [h.reply_ip for h in two.hops]

    def test_ecmp_spreads_flows(self, tiny_internet):
        fwd = self._forwarder(tiny_internet)
        level3 = tiny_internet.as_named("Level3")
        cox = tiny_internet.as_named("Cox")
        used = Counter()
        for index in range(300):
            path = fwd.route_flow(level3.asn, "dfw", cox.asn, "dfw", flow_key=f"f{index}")
            used[path.crossed_links[0]] += 1
        assert len(used) >= 6, "parallel Dallas links should share flows"

    def test_reply_ips_belong_to_hop_router(self, tiny_internet):
        fwd = self._forwarder(tiny_internet)
        level3 = tiny_internet.as_named("Level3")
        comcast = tiny_internet.as_named("Comcast")
        path = fwd.route_flow(level3.asn, "chi", comcast.asn, "chi", flow_key="y")
        for hop in path.hops:
            iface = tiny_internet.fabric.interface(hop.reply_ip)
            assert iface is not None and iface.router_id == hop.router_id

    def test_unroutable_returns_none(self, tiny_internet):
        fwd = self._forwarder(tiny_internet)
        # Two stubs with different single providers and no peer edges may
        # still route; instead use a nonexistent ASN relationship test via
        # peers-only isolation is hard here — check src == dst city path.
        level3 = tiny_internet.as_named("Level3")
        path = fwd.route_flow(level3.asn, "nyc", level3.asn, "nyc", flow_key="z")
        assert path is not None
        assert path.crossed_links == ()

    def test_access_hop_terminates_access_isp_paths(self, tiny_internet):
        fwd = self._forwarder(tiny_internet)
        level3 = tiny_internet.as_named("Level3")
        comcast = tiny_internet.as_named("Comcast")
        city = comcast.home_cities[0]
        path = fwd.route_flow(level3.asn, "nyc", comcast.asn, city, flow_key="w")
        from repro.topology.routers import RouterRole

        last = tiny_internet.fabric.router(path.hops[-1].router_id)
        assert last.role is RouterRole.ACCESS

    def test_egress_spread_across_destinations(self, tiny_internet):
        """MED-honoring mix: different client metros can use different
        interconnects even from one fixed server city."""
        fwd = self._forwarder(tiny_internet)
        level3 = tiny_internet.as_named("Level3")
        cox = tiny_internet.as_named("Cox")
        cities_used = set()
        for dst_city in cox.home_cities:
            for index in range(8):
                path = fwd.route_flow(
                    level3.asn, "atl", cox.asn, dst_city, flow_key=f"k{index}"
                )
                link = tiny_internet.fabric.interconnect(path.crossed_links[0])
                cities_used.add(link.city_code)
        assert len(cities_used) >= 2
