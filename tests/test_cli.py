"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


class TestGenerate:
    def test_writes_artifacts(self, tmp_path):
        out = str(tmp_path / "data")
        assert main(["--seed", "7", "generate", "--out-dir", out]) == 0
        for name in ("pfx2as.txt", "as-rel.txt", "as-org.txt", "ixp-prefixes.txt"):
            assert os.path.exists(os.path.join(out, name))

    def test_artifacts_loadable(self, tmp_path):
        from repro.data.topology_io import load_prefix_table, load_relationships

        out = str(tmp_path / "data")
        main(["--seed", "7", "generate", "--out-dir", out])
        table = load_prefix_table(os.path.join(out, "pfx2as.txt"))
        assert len(table) > 1000
        rows = load_relationships(os.path.join(out, "as-rel.txt"))
        assert len(rows) > 1000


class TestCampaignAnalyze:
    def test_campaign_then_analyze(self, tmp_path, capsys):
        ndt = str(tmp_path / "ndt.csv")
        traces = str(tmp_path / "tr.jsonl")
        assert main([
            "--seed", "7", "campaign", "--tests", "300", "--days", "2",
            "--orgs", "Cox", "--out", ndt, "--traces", traces,
        ]) == 0
        assert os.path.exists(ndt) and os.path.exists(traces)
        capsys.readouterr()
        assert main(["analyze", "--ndt", ndt, "--min-samples", "20"]) == 0
        output = capsys.readouterr().out
        assert "server ASN" in output

    def test_bad_experiment_id(self):
        assert main(["experiments", "not-an-id"]) == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_report_delegates(self, tmp_path, capsys):
        path = str(tmp_path / "r.md")
        assert main(["report", path, "tab1"]) == 0
        assert os.path.exists(path)
