"""Shared fixtures: small worlds that keep the suite fast.

``tiny_internet`` is a reduced topology for structural tests;
``small_study`` is a fully wired study world at ~1/10 scale, shared
session-wide (building it once costs a few seconds; every integration
test reuses it).

Hypothesis profiles: ``dev`` (default) explores with a random seed;
``ci`` is derandomized so property tests are reproducible in CI. Select
with ``HYPOTHESIS_PROFILE=ci``. Registration is gated on the import so
the suite still runs where the dev dependency is absent.
"""

from __future__ import annotations

import os

import pytest

from repro.core.pipeline import StudyConfig, build_study
from repro.topology.generator import InternetConfig, generate_internet

try:
    from hypothesis import HealthCheck, settings

    _COMMON = dict(
        deadline=None,  # world generation dwarfs any per-example deadline
        suppress_health_check=(HealthCheck.too_slow,),
    )
    settings.register_profile("dev", max_examples=20, **_COMMON)
    settings.register_profile("ci", max_examples=20, derandomize=True,
                              print_blob=True, **_COMMON)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ModuleNotFoundError:  # pragma: no cover - hypothesis not installed
    pass

@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Point the artifact cache at a per-session temp dir.

    Table-first worlds persist snapshots on compile, so without this the
    suite would write world files into the developer's real cache.
    Tests that want a specific cache dir still override REPRO_CACHE_DIR
    per-test with monkeypatch, which takes precedence.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("artifact-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


TINY_CONFIG = InternetConfig(seed=7, n_stub=60, n_transit=6)

SMALL_STUDY_CONFIG = StudyConfig(
    seed=7,
    scale=0.1,
    mlab_server_count=60,
    speedtest_server_count=150,
    clients_per_million=15.0,
)


@pytest.fixture(scope="session")
def tiny_internet():
    return generate_internet(TINY_CONFIG)


@pytest.fixture(scope="session")
def small_study():
    return build_study(SMALL_STUDY_CONFIG)
