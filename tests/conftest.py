"""Shared fixtures: small worlds that keep the suite fast.

``tiny_internet`` is a reduced topology for structural tests;
``small_study`` is a fully wired study world at ~1/10 scale, shared
session-wide (building it once costs a few seconds; every integration
test reuses it).
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import StudyConfig, build_study
from repro.topology.generator import InternetConfig, generate_internet

TINY_CONFIG = InternetConfig(seed=7, n_stub=60, n_transit=6)

SMALL_STUDY_CONFIG = StudyConfig(
    seed=7,
    scale=0.1,
    mlab_server_count=60,
    speedtest_server_count=150,
    clients_per_million=15.0,
)


@pytest.fixture(scope="session")
def tiny_internet():
    return generate_internet(TINY_CONFIG)


@pytest.fixture(scope="session")
def small_study():
    return build_study(SMALL_STUDY_CONFIG)
