"""The traceroute batch engine's byte-identity contract.

``TracerouteEngine.trace_batch`` promises to return exactly what
sequential ``trace`` calls would: same hops to the last bit of RTT
jitter, same silent-router / transient-loss / third-party artifacts,
same trace ids, same RNG stream consumption. These tests drive both
paths over identical request sets — across seeds, across artifact-heavy
configurations, across repeated batches (which exercise the render-table
fast path) — and pin the whole thing to a golden digest captured from
the scalar engine. The vectorized MAP-IT pass-1 rides on the same
contract: with and without ``REPRO_COMPILED`` it must infer identical
ownership and links.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.inference.mapit import MapIt
from repro.measurement.traceroute import (
    TraceRequest,
    TracerouteConfig,
    TracerouteEngine,
)

#: sha256 over two rounds of the request set below (records + one RNG
#: draw at the end), as produced by the scalar `trace` path. trace_batch
#: drifting from this means batching changed observable output.
GOLDEN_TRACE_SHA = "322f697edfe2091815115ede8b049e94e89e4a5efa127334da2d2e286e64e24b"

#: Elevated artifact rates: silent routers, third-party addresses, and
#: transient loss all fire constantly, hammering every batch branch that
#: consumes RNG draws conditionally.
ARTIFACT_HEAVY = TracerouteConfig(
    seed=5,
    silent_router_fraction=0.30,
    transient_loss_prob=0.10,
    third_party_prob=0.30,
    destination_responds_prob=0.50,
)


def _golden_requests(study, tag="golden"):
    vp = study.ark_vps()[0]
    targets = [(s.ip, s.asn, s.city) for s in study.mlab.servers()]
    targets += [(s.ip, s.asn, s.city) for s in study.speedtest.servers()[:60]]
    graph = study.internet.graph
    return [
        TraceRequest(
            vp.ip, vp.asn, vp.city, ip, asn, city, float(i), (tag, vp.code, ip, i)
        )
        for i, (ip, asn, city) in enumerate(targets)
        if asn in graph
    ]


def _engine(study, config, stream):
    return TracerouteEngine(study.internet, study.forwarder, config, stream=stream)


def _digest(records, rng_probe):
    h = hashlib.sha256()
    for rec in records:
        if rec is None:
            h.update(b"none")
            continue
        h.update(repr((
            rec.trace_id, rec.timestamp_s, rec.src_ip, rec.src_asn, rec.dst_ip,
            tuple((hop.ttl, hop.ip, hop.rtt_ms) for hop in rec.hops),
            rec.reached_destination, rec.gt_crossed_links, rec.gt_as_path,
        )).encode())
    h.update(repr(rng_probe).encode())
    return h.hexdigest()


class TestTraceBatchEquivalence:
    @pytest.mark.parametrize(
        "config,stream",
        [
            (TracerouteConfig(seed=7), "eq:default"),
            (TracerouteConfig(seed=1234), "eq:seed1234"),
            (ARTIFACT_HEAVY, "eq:artifacts"),
        ],
        ids=["default-seed", "other-seed", "artifact-heavy"],
    )
    def test_batch_matches_sequential_trace(self, small_study, config, stream):
        requests = _golden_requests(small_study, tag=stream)
        scalar_engine = _engine(small_study, config, stream)
        batch_engine = _engine(small_study, config, stream)

        scalar = [scalar_engine.trace(*r) for r in requests]
        batched = batch_engine.trace_batch(requests)

        assert len(batched) == len(scalar)
        for got, want in zip(batched, scalar):
            assert got == want
            assert repr(got) == repr(want)
        # The RNG sits exactly where scalar left it, and ids continue.
        assert batch_engine._rng.getstate() == scalar_engine._rng.getstate()
        assert batch_engine._next_trace_id == scalar_engine._next_trace_id

    def test_artifact_heavy_actually_exercises_artifacts(self, small_study):
        requests = _golden_requests(small_study, tag="art:probe")
        records = _engine(small_study, ARTIFACT_HEAVY, "art:probe").trace_batch(requests)
        hops = [h for r in records if r is not None for h in r.hops]
        assert any(h.ip is None for h in hops), "no silent/lost hops produced"
        assert any(r is not None and not r.reached_destination for r in records)

    def test_repeated_batches_hit_render_tables_identically(self, small_study):
        """Round two revisits every path — the table-render fast path —
        and must still match round two of the scalar walk."""
        requests = _golden_requests(small_study, tag="eq:repeat")
        config = TracerouteConfig(seed=7)
        scalar_engine = _engine(small_study, config, "eq:repeat")
        batch_engine = _engine(small_study, config, "eq:repeat")
        for _ in range(3):
            scalar = [scalar_engine.trace(*r) for r in requests]
            batched = batch_engine.trace_batch(requests)
            assert batched == scalar
        assert batch_engine._rng.getstate() == scalar_engine._rng.getstate()

    def test_batch_then_scalar_continues_identically(self, small_study):
        """Switching modes mid-stream is seamless: a batch followed by
        scalar calls equals the all-scalar sequence."""
        requests = _golden_requests(small_study, tag="eq:mix")
        half = len(requests) // 2
        config = TracerouteConfig(seed=7)
        mixed_engine = _engine(small_study, config, "eq:mix")
        scalar_engine = _engine(small_study, config, "eq:mix")

        mixed = list(mixed_engine.trace_batch(requests[:half]))
        mixed += [mixed_engine.trace(*r) for r in requests[half:]]
        scalar = [scalar_engine.trace(*r) for r in requests]
        assert mixed == scalar

    def test_compiled_escape_hatch_identical(self, small_study, monkeypatch):
        requests = _golden_requests(small_study, tag="eq:hatch")
        config = TracerouteConfig(seed=7)
        fast = _engine(small_study, config, "eq:hatch").trace_batch(requests)
        monkeypatch.setenv("REPRO_COMPILED", "0")
        slow = _engine(small_study, config, "eq:hatch").trace_batch(requests)
        assert slow == fast

    def test_empty_batch(self, small_study):
        assert _engine(small_study, TracerouteConfig(seed=7), "eq:empty").trace_batch([]) == []


class TestTraceBatchGolden:
    def test_two_rounds_match_scalar_golden(self, small_study):
        """Pinned digest captured from the scalar engine: round one walks
        fresh paths, round two renders from tables; both must reproduce
        the scalar output bit for bit, RNG stream included."""
        requests = _golden_requests(small_study)
        engine = _engine(small_study, TracerouteConfig(seed=7), "golden")
        records = list(engine.trace_batch(requests))
        records += engine.trace_batch(requests)
        assert _digest(records, engine._rng.random()) == GOLDEN_TRACE_SHA


class TestMapItVectorEquivalence:
    def test_vectorized_pass_matches_scalar(self, small_study, monkeypatch):
        requests = _golden_requests(small_study, tag="mapit:eq")
        records = _engine(small_study, TracerouteConfig(seed=7), "mapit:eq").trace_batch(
            requests
        )
        paths = [r.router_hop_ips() for r in records if r is not None]
        interfaces = {ip for path in paths for ip in path if ip is not None}
        assert len(interfaces) >= 64, "corpus too small to trigger the vector path"

        fast = MapIt(small_study.oracle, small_study.internet.graph).infer(paths)
        monkeypatch.setenv("REPRO_COMPILED", "0")
        slow = MapIt(small_study.oracle, small_study.internet.graph).infer(paths)

        assert fast.ownership == slow.ownership
        assert fast.links == slow.links
        assert fast.passes_used == slow.passes_used
        assert fast.flips == slow.flips
