"""Tests for simulated alias resolution."""

from repro.inference.alias import AliasResolver


def _border_ips(internet, count=200):
    ips = []
    for link in internet.fabric.interconnects()[:count]:
        ips.extend([link.a_ip, link.b_ip])
    return ips


class TestAliasResolver:
    def test_perfect_recall_matches_ground_truth(self, tiny_internet):
        ips = _border_ips(tiny_internet)
        resolution = AliasResolver(tiny_internet, recall=1.0, seed=7).resolve(ips)
        by_group: dict[int, set[int]] = {}
        for ip in ips:
            by_group.setdefault(resolution.group(ip), set()).add(
                tiny_internet.fabric.interface(ip).router_id
            )
        assert all(len(routers) == 1 for routers in by_group.values())
        # And interfaces of the same router share a group.
        by_router: dict[int, set[int]] = {}
        for ip in ips:
            router = tiny_internet.fabric.interface(ip).router_id
            by_router.setdefault(router, set()).add(resolution.group(ip))
        assert all(len(groups) == 1 for groups in by_router.values())

    def test_zero_recall_splits_multi_interface_routers(self, tiny_internet):
        ips = _border_ips(tiny_internet)
        resolution = AliasResolver(tiny_internet, recall=0.0, seed=7).resolve(ips)
        split = 0
        by_router: dict[int, set[int]] = {}
        for ip in ips:
            router = tiny_internet.fabric.interface(ip).router_id
            by_router.setdefault(router, set()).add(resolution.group(ip))
        for router, groups in by_router.items():
            observed = [
                ip for ip in ips
                if tiny_internet.fabric.interface(ip).router_id == router
            ]
            if len(set(observed)) > 1:
                split += len(groups) > 1
        assert split > 0

    def test_never_merges_distinct_routers_by_default(self, tiny_internet):
        ips = _border_ips(tiny_internet)
        resolution = AliasResolver(tiny_internet, recall=0.9, seed=7).resolve(ips)
        by_group: dict[int, set[int]] = {}
        for ip in ips:
            by_group.setdefault(resolution.group(ip), set()).add(
                tiny_internet.fabric.interface(ip).router_id
            )
        assert all(len(routers) == 1 for routers in by_group.values())

    def test_deterministic(self, tiny_internet):
        ips = _border_ips(tiny_internet)
        one = AliasResolver(tiny_internet, seed=7).resolve(ips)
        two = AliasResolver(tiny_internet, seed=7).resolve(ips)
        assert one.group_of == two.group_of

    def test_unknown_ips_get_singletons(self, tiny_internet):
        resolution = AliasResolver(tiny_internet, seed=7).resolve([999999999])
        assert resolution.group(999999999) is not None

    def test_unprobed_ip_sentinel(self, tiny_internet):
        resolution = AliasResolver(tiny_internet, seed=7).resolve([])
        assert resolution.group(42) == -42

    def test_recall_validation(self, tiny_internet):
        import pytest

        with pytest.raises(ValueError):
            AliasResolver(tiny_internet, recall=1.5)
