"""Persisted world snapshots: round-trip, version gating, eviction, pools.

The table-first pipeline persists every compiled world as a versioned
``.npz`` in the artifact cache and memory-maps it back on cold starts.
These tests pin the durability contract: a snapshot round-trip is
byte-identical to the in-memory world, a stale ``format_version`` warns
and rebuilds (never crashes, never serves wrong tables), eviction only
re-derives, and pool workers attached via :class:`SnapshotHandle` return
the same coverage reports as the serial sweep under both start methods.
"""

from __future__ import annotations

import logging
import multiprocessing
from pathlib import Path

import numpy as np
import pytest

from repro.core.coverage import collect_coverage_reports
from repro.core.pipeline import shared_world_export
from repro.measurement.traceroute import TraceRequest, TracerouteConfig, TracerouteEngine
from repro.net import compiled, snapshot
from repro.net.compiled import (
    CompiledWorld,
    SnapshotExport,
    SnapshotHandle,
    attach_snapshot,
    clear_compile_cache,
    compile_from_object_graph,
    compile_world,
    compiled_world_for,
    load_snapshot_world,
    persist_snapshot,
    snapshot_path,
    world_digest,
)
from repro.topology.generator import InternetConfig, generate_internet
from repro.util import artifact_cache
from repro.validate.contracts import validate_internet

# Seeds distinct from conftest's TINY_CONFIG so the process-global
# compile memo and cache dir never alias the session fixtures.
_SEEDS = (21, 34)


def _tiny(seed: int) -> InternetConfig:
    return InternetConfig(seed=seed, n_stub=40, n_transit=5)


def _arrays_of(world: CompiledWorld) -> dict[str, np.ndarray]:
    return {
        name: np.ascontiguousarray(getattr(world, name))
        for name in CompiledWorld._ARRAY_FIELDS
    }


def _assert_worlds_byte_equal(a: CompiledWorld, b: CompiledWorld) -> None:
    for name in CompiledWorld._ARRAY_FIELDS:
        left = np.ascontiguousarray(getattr(a, name))
        right = np.ascontiguousarray(getattr(b, name))
        assert left.dtype == right.dtype, name
        assert left.shape == right.shape, name
        assert left.tobytes() == right.tobytes(), name


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    """A private cache dir plus a clean compile memo for every test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    clear_compile_cache()
    yield tmp_path
    clear_compile_cache()


class TestRoundTrip:
    @pytest.mark.parametrize("seed", _SEEDS)
    def test_compile_persist_mmap_load_byte_identical(self, fresh_cache, seed):
        internet = generate_internet(_tiny(seed))
        world = compile_world(internet)
        path = snapshot_path(world.digest)
        assert path.exists(), "compile_world must persist the snapshot"

        loaded = load_snapshot_world(world.digest)
        assert loaded is not None
        assert loaded.digest == world.digest
        assert loaded.seed == world.seed
        _assert_worlds_byte_equal(world, loaded)
        # The load must actually map the file, not copy it into memory.
        mapped = [
            name for name in CompiledWorld._ARRAY_FIELDS
            if isinstance(getattr(loaded, name), np.memmap)
        ]
        assert mapped, "no array came back memory-mapped"
        for name in CompiledWorld._ARRAY_FIELDS:
            array = getattr(loaded, name)
            if array.size:
                assert isinstance(array, np.memmap), name

    @pytest.mark.parametrize("seed", _SEEDS)
    def test_mmap_world_passes_world_agreement(self, fresh_cache, seed):
        internet = generate_internet(_tiny(seed))
        digest = world_digest(internet)
        compile_world(internet)
        clear_compile_cache()
        loaded = load_snapshot_world(digest)
        assert loaded is not None
        # Route the contract's compile_world call through the mapped
        # snapshot: the memo is authoritative per digest.
        compiled._COMPILE_CACHE[digest] = loaded
        internet.tables = None
        report = validate_internet(internet)
        result = [r for r in report.results if r.name == "compiled.world_agreement"]
        assert len(result) == 1
        assert result[0].passed, report.render()

    def test_origin_batch_byte_identical_to_in_memory(self, fresh_cache):
        internet = generate_internet(_tiny(_SEEDS[0]))
        reference = compile_from_object_graph(internet)
        compile_world(internet)
        clear_compile_cache()
        loaded = load_snapshot_world(reference.digest)
        assert loaded is not None
        ips = np.concatenate([
            reference.iface_ips,
            reference.iface_ips + 1,
            reference.lpm_starts,
            reference.lpm_ends - 1,
        ]).astype(np.int64)
        assert (
            loaded.origin_batch(ips).tobytes()
            == reference.origin_batch(ips).tobytes()
        )

    def test_trace_batch_byte_identical_to_in_memory(self, fresh_cache, small_study):
        study = small_study
        internet = study.internet
        digest = world_digest(internet)
        vp = study.ark_vps()[0]
        requests = [
            TraceRequest(
                src_ip=vp.ip,
                src_asn=vp.asn,
                src_city=vp.city,
                dst_ip=server.ip,
                dst_asn=server.asn,
                dst_city=server.city,
                timestamp_s=0.0,
                flow_key=("snapshot-parity", vp.code, server.ip),
            )
            for server in study.mlab.servers()[:20]
        ]

        def run() -> list:
            engine = TracerouteEngine(
                internet,
                study.forwarder,
                TracerouteConfig(seed=study.config.seed),
                stream="snapshot-parity",
            )
            return engine.trace_batch(list(requests))

        compile_world(internet)  # wraps the generator tables, persists
        baseline = run()
        clear_compile_cache()
        loaded = load_snapshot_world(digest)
        assert loaded is not None
        compiled._COMPILE_CACHE[digest] = loaded
        assert run() == baseline


class TestFormatVersionMismatch:
    def test_stale_snapshot_warns_and_rebuilds(
        self, fresh_cache, monkeypatch, caplog
    ):
        internet = generate_internet(_tiny(_SEEDS[0]))
        world = compile_world(internet)
        path = snapshot_path(world.digest)
        assert path.exists()

        # Fabricate a snapshot written by an older code version.
        snapshot.save_arrays(
            path, _arrays_of(world),
            digest=world.digest, seed=world.seed, format_version=0,
        )
        clear_compile_cache()
        internet.tables = None  # force the snapshot resolution path

        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        mismatches = snapshot.VERSION_MISMATCHES
        before = mismatches.value
        with caplog.at_level(logging.WARNING, logger="repro"):
            rebuilt = compile_world(internet)

        assert mismatches.value == before + 1
        assert any(
            "format_version" in record.getMessage() for record in caplog.records
        )
        _assert_worlds_byte_equal(world, rebuilt)
        # The stale file was dropped and replaced by a current-version
        # snapshot, so the *next* cold start loads instead of rebuilding.
        assert path.exists()
        clear_compile_cache()
        assert load_snapshot_world(world.digest) is not None

    def test_corrupt_snapshot_is_dropped_and_rebuilt(self, fresh_cache):
        internet = generate_internet(_tiny(_SEEDS[1]))
        world = compile_world(internet)
        path = snapshot_path(world.digest)
        path.write_bytes(b"not a zip archive")
        clear_compile_cache()
        internet.tables = None
        rebuilt = compile_world(internet)
        _assert_worlds_byte_equal(world, rebuilt)
        assert load_snapshot_world(world.digest) is not None


class TestEviction:
    def test_eviction_removes_oldest_then_recompile_is_identical(
        self, fresh_cache, monkeypatch
    ):
        old_internet = generate_internet(_tiny(_SEEDS[0]))
        new_internet = generate_internet(_tiny(_SEEDS[1]))
        old_world = compile_world(old_internet)
        new_world = compile_world(new_internet)
        old_path = snapshot_path(old_world.digest)
        new_path = snapshot_path(new_world.digest)
        assert old_path.exists() and new_path.exists()

        import os
        os.utime(old_path, (1.0, 1.0))  # make it unambiguously the LRU entry
        limit = new_path.stat().st_size + old_path.stat().st_size // 2
        evicted = artifact_cache.evict_to_limit(limit)
        assert evicted == 1
        assert not old_path.exists()
        assert new_path.exists()

        # Eviction only re-derives, never changes answers.
        clear_compile_cache()
        old_internet.tables = None
        recompiled = compile_world(old_internet)
        _assert_worlds_byte_equal(old_world, recompiled)
        assert old_path.exists(), "recompile must re-persist the evicted world"

    def test_env_budget_applies_on_store(self, fresh_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0.001")  # ~1 KiB budget
        internet = generate_internet(_tiny(_SEEDS[0]))
        world = compile_world(internet)
        # The snapshot itself blows the budget, so the store-time sweep
        # leaves at most the newest entry standing.
        entries = list(fresh_cache.glob("*.npz")) + list(fresh_cache.glob("*.pkl"))
        assert len(entries) <= 1
        # Whatever was evicted is merely re-derivable.
        clear_compile_cache()
        internet.tables = None
        _assert_worlds_byte_equal(world, compile_world(internet))


class TestSnapshotTransport:
    def test_export_prefers_snapshot_handle_under_spawn(
        self, fresh_cache, monkeypatch, small_study
    ):
        monkeypatch.setenv("REPRO_POOL_OVERSUBSCRIBE", "1")
        monkeypatch.setenv("REPRO_POOL_START", "spawn")
        export = shared_world_export(small_study, jobs=2)
        assert isinstance(export, SnapshotExport)
        assert Path(export.handle.path).exists()
        export.close(unlink=True)
        assert Path(export.handle.path).exists(), "snapshot is a durable cache entry"

        clear_compile_cache()
        attached = attach_snapshot(export.handle)
        assert attached is not None
        _assert_worlds_byte_equal(attached, compile_world(small_study.internet))

    def test_attach_degrades_to_none_when_file_vanished(
        self, fresh_cache, monkeypatch, caplog
    ):
        clear_compile_cache()
        handle = SnapshotHandle(digest="no-such-world", path=str(fresh_cache / "gone.npz"))
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert attach_snapshot(handle) is None
        assert any("attach" in r.getMessage() for r in caplog.records)

    def test_compiled_world_for_cold_loads_without_generator(self, fresh_cache):
        config = _tiny(_SEEDS[0])
        first = compiled_world_for(config)
        clear_compile_cache()

        def boom(_config):  # the cold path must not generate
            raise AssertionError("generator invoked on a snapshot hit")

        import repro.topology.generator as generator_module

        original = generator_module.generate_internet
        generator_module.generate_internet = boom
        try:
            second = compiled_world_for(config)
        finally:
            generator_module.generate_internet = original
        _assert_worlds_byte_equal(first, second)


class TestPoolParity:
    def test_pooled_sweep_matches_serial_for_both_start_methods(
        self, fresh_cache, monkeypatch, small_study
    ):
        serial = collect_coverage_reports(
            small_study, alexa_count=40, max_prefixes=60, jobs=1
        )
        monkeypatch.setenv("REPRO_POOL_OVERSUBSCRIBE", "1")
        for start in ("fork", "spawn"):
            if start not in multiprocessing.get_all_start_methods():
                continue  # pragma: no cover - platform without fork
            monkeypatch.setenv("REPRO_POOL_START", start)
            pooled = collect_coverage_reports(
                small_study, alexa_count=40, max_prefixes=60, jobs=2
            )
            assert list(pooled) == list(serial), start
            for label in serial:
                assert pooled[label] == serial[label], (start, label)
        # The spawn run shipped the world by snapshot file.
        assert snapshot_path(world_digest(small_study.internet)).exists()
