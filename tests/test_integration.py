"""End-to-end integration: the paper's headline phenomena on a small world.

These are the claims the reproduction stands on; each test exercises the
full pipeline (topology → routing → campaign → inference/statistics) and
asserts the *qualitative* result the paper reports.
"""

import pytest

from repro.core.congestion import classify_series, diurnal_series
from repro.core.matching import match_ndt_to_traceroutes
from repro.platforms.campaign import CampaignConfig
from repro.stats.bias import hour_sample_imbalance


@pytest.fixture(scope="module")
def fig5_campaign(small_study):
    return small_study.run_campaign(
        CampaignConfig(seed=9, days=21, total_tests=6000, orgs=("ATT", "Comcast"))
    )


class TestFigure5Phenomena:
    def _records(self, study, result, org, source="GTT"):
        source_asn = study.oracle.canonical(study.internet.as_named(source).asn)
        return [
            r
            for r in result.ndt_records
            if r.gt_client_org == org
            and study.oracle.canonical(r.server_asn) == source_asn
        ]

    def test_att_via_gtt_collapses_at_peak(self, small_study, fig5_campaign):
        records = self._records(small_study, fig5_campaign, "ATT")
        assert len(records) > 100
        verdict = classify_series(diurnal_series(records), threshold=0.5)
        assert verdict.congested
        assert verdict.peak_median < 3.0, "paper: below 1 Mbps at peak"
        assert verdict.relative_drop > 0.7

    def test_comcast_via_gtt_dips_but_is_not_congested(self, small_study, fig5_campaign):
        records = self._records(small_study, fig5_campaign, "Comcast")
        assert len(records) > 40
        verdict = classify_series(diurnal_series(records), threshold=0.5)
        assert not verdict.congested
        assert verdict.relative_drop < 0.5, "paper: a 20-30% dip, not a collapse"

    def test_sample_count_imbalance(self, small_study, fig5_campaign):
        series = diurnal_series(
            [r for r in fig5_campaign.ndt_records if r.gt_client_org == "Comcast"]
        )
        assert hour_sample_imbalance(series.counts()) > 0.3

    def test_congestion_raises_rtt_and_retx(self, small_study, fig5_campaign):
        records = self._records(small_study, fig5_campaign, "ATT")
        peak = [r for r in records if 19 <= r.local_hour <= 22]
        off = [r for r in records if 9 <= r.local_hour <= 16]
        assert peak and off
        mean = lambda xs: sum(xs) / len(xs)
        assert mean([r.rtt_ms for r in peak]) > mean([r.rtt_ms for r in off])
        assert mean([r.retx_rate for r in peak]) > mean([r.retx_rate for r in off])


class TestMatchingPhenomenon:
    def test_busy_daemons_lose_traces(self, small_study):
        # Compress a high rate into one day: matching must drop visibly
        # below the light-load case.
        heavy = small_study.run_campaign(
            CampaignConfig(seed=5, days=1, total_tests=9000)
        )
        light = small_study.run_campaign(
            CampaignConfig(seed=5, days=21, total_tests=2000)
        )
        heavy_match = match_ndt_to_traceroutes(
            heavy.ndt_records, heavy.traceroute_records
        ).matched_fraction
        light_match = match_ndt_to_traceroutes(
            light.ndt_records, light.traceroute_records
        ).matched_fraction
        assert heavy_match < light_match


class TestGroundTruthConsistency:
    def test_bottleneck_is_on_path(self, small_study, fig5_campaign):
        for record in fig5_campaign.ndt_records[:500]:
            if record.gt_bottleneck_link is not None:
                assert record.gt_bottleneck_link in record.gt_crossed_links

    def test_client_org_label_consistent(self, small_study, fig5_campaign):
        for record in fig5_campaign.ndt_records[:200]:
            assert small_study.org_label(record.gt_client_asn) == record.gt_client_org
