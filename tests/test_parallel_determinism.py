"""The fast-path invariants: every cache and every process pool must be
invisible in the output.

Three families of checks:

* the parallel fan-out (``jobs=2``, ``jobs=4``) produces coverage reports
  equal record-for-record to the serial loop;
* the hot-path caches (geo distance matrix, per-city server rankings,
  the Forwarder's segment caches) agree with uncached recomputation;
* the on-disk artifact cache round-trips campaign results so a warm
  start equals a cold one.
"""

from __future__ import annotations

import pytest

from repro.core.coverage import collect_coverage_reports
from repro.core.pipeline import build_study
from repro.platforms.campaign import CampaignConfig, run_ndt_campaign
from repro.routing.forwarding import Forwarder
from repro.topology.geo import (
    CITIES,
    city_by_code,
    distance_matrix,
    geo_distance_km,
    haversine_km,
    propagation_delay_by_code_ms,
    propagation_delay_ms,
)
from repro.obs import metrics, trace
from repro.util import artifact_cache
from repro.util.parallel import (
    _WORKER_STATS_PROVIDERS,
    parallel_map,
    partition,
    pool_stats,
    register_worker_stats,
    resolve_jobs,
    worker_context,
)

DETERMINISM_CAMPAIGN = CampaignConfig(seed=11, days=3, total_tests=600)


def _run_campaign(study, forwarder):
    return run_ndt_campaign(
        study.internet,
        study.population,
        study.mlab,
        forwarder,
        study.tcp.reseeded(DETERMINISM_CAMPAIGN.seed),
        DETERMINISM_CAMPAIGN,
        traceroute_engine=None,
    )


class TestGeoCaches:
    def test_matrix_matches_scalar_haversine(self):
        for a in CITIES:
            for b in CITIES:
                assert geo_distance_km(a, b) == pytest.approx(
                    haversine_km(a, b), rel=1e-9
                )

    def test_matrix_symmetric_zero_diagonal(self):
        matrix = distance_matrix()
        assert (matrix == matrix.T).all()
        assert (matrix.diagonal() == 0.0).all()

    def test_delay_by_code_matches_city_objects(self):
        for a in CITIES:
            for b in CITIES:
                assert propagation_delay_by_code_ms(a.code, b.code) == propagation_delay_ms(a, b)


class TestServerRankingCaches:
    def test_mlab_ranking_matches_fresh_computation(self, small_study):
        mlab = small_study.mlab
        for city in CITIES:
            ranked = mlab.sites_by_distance(city.code)
            expected = {}
            for server in mlab.servers():
                if server.site not in expected:
                    expected[server.site] = geo_distance_km(
                        city_by_code(city.code), city_by_code(server.city)
                    )
            assert ranked == sorted((d, s) for s, d in expected.items())

    def test_mlab_ranking_returns_copy(self, small_study):
        first = small_study.mlab.sites_by_distance("nyc")
        first.clear()
        assert small_study.mlab.sites_by_distance("nyc")

    def test_speedtest_ranking_matches_fresh_computation(self, small_study):
        speedtest = small_study.speedtest
        for city in CITIES[:8]:
            ranked = speedtest.servers_by_distance(city.code)
            origin = city_by_code(city.code)
            expected = sorted(
                speedtest.servers(),
                key=lambda s: (geo_distance_km(origin, city_by_code(s.city)), s.server_id),
            )
            assert ranked == expected

    def test_repeated_ranking_identical(self, small_study):
        assert small_study.mlab.sites_by_distance("lax") == small_study.mlab.sites_by_distance("lax")


class TestForwarderCacheTransparency:
    def test_campaign_identical_with_caches_disabled(self, small_study):
        cached = _run_campaign(small_study, small_study.forwarder)
        uncached_forwarder = Forwarder(
            small_study.internet, small_study.routing, segment_cache_size=0
        )
        uncached = _run_campaign(small_study, uncached_forwarder)
        assert cached.ndt_records == uncached.ndt_records

    def test_campaign_repeatable_on_shared_forwarder(self, small_study):
        first = _run_campaign(small_study, small_study.forwarder)
        second = _run_campaign(small_study, small_study.forwarder)
        assert first.ndt_records == second.ndt_records


class TestParallelCoverage:
    @pytest.fixture(scope="class")
    def serial_reports(self, small_study):
        return collect_coverage_reports(small_study, alexa_count=80, jobs=1)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_equals_serial(self, small_study, serial_reports, jobs):
        parallel = collect_coverage_reports(small_study, alexa_count=80, jobs=jobs)
        assert list(parallel) == list(serial_reports)
        for label, report in serial_reports.items():
            assert parallel[label] == report

    def test_reports_cover_every_vp(self, small_study, serial_reports):
        assert list(serial_reports) == [vp.label for vp in small_study.ark_vps()]


class TestArtifactCache:
    def test_cold_and_warm_campaigns_equal(self, small_study, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        artifact_cache.set_enabled(True)
        try:
            campaign = CampaignConfig(seed=13, days=2, total_tests=300)
            cold = small_study.run_campaign(campaign)
            assert list(tmp_path.glob("campaign-*.pkl"))
            warm = small_study.run_campaign(campaign)
            assert warm.ndt_records == cold.ndt_records
            assert warm.traceroute_records == cold.traceroute_records
        finally:
            artifact_cache.set_enabled(None)

    def test_disabled_cache_writes_nothing(self, small_study, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        artifact_cache.set_enabled(False)
        try:
            small_study.run_campaign(CampaignConfig(seed=17, days=2, total_tests=200))
            assert not list(tmp_path.glob("*.pkl"))
        finally:
            artifact_cache.set_enabled(None)

    def test_corrupt_entry_is_a_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        artifact_cache.set_enabled(True)
        try:
            key = artifact_cache.artifact_key("unit", "x")
            artifact_cache.store("unit", key, {"v": 1})
            path = next(tmp_path.glob("unit-*.pkl"))
            path.write_bytes(b"not a pickle")
            assert artifact_cache.load("unit", key) is None
            assert not path.exists()
        finally:
            artifact_cache.set_enabled(None)

    def test_key_depends_on_kind_and_parts(self):
        assert artifact_cache.artifact_key("a", 1) != artifact_cache.artifact_key("b", 1)
        assert artifact_cache.artifact_key("a", 1) != artifact_cache.artifact_key("a", 2)
        assert artifact_cache.artifact_key("a", 1) == artifact_cache.artifact_key("a", 1)


class TestObservabilityTransparency:
    """Tracing and metrics must be invisible in every result payload."""

    def test_campaign_identical_with_tracing_on(self, small_study):
        baseline = _run_campaign(small_study, small_study.forwarder)
        trace.set_enabled(True)
        trace.reset()
        try:
            traced = _run_campaign(small_study, small_study.forwarder)
        finally:
            trace.set_enabled(False)
            trace.reset()
        assert traced.ndt_records == baseline.ndt_records
        assert traced.traceroute_records == baseline.traceroute_records

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_coverage_identical_with_tracing_and_metrics_off(self, small_study, jobs):
        with_obs = collect_coverage_reports(small_study, alexa_count=80, jobs=jobs)
        trace.set_enabled(True)
        trace.reset()
        metrics.set_enabled(False)
        try:
            # Tracing on but metrics forced off — the wrapper's other half.
            without_metrics = collect_coverage_reports(
                small_study, alexa_count=80, jobs=jobs
            )
        finally:
            metrics.set_enabled(None)
            trace.set_enabled(False)
            trace.reset()
        assert without_metrics == with_obs


class TestParallelMapPrimitive:
    def test_preserves_order(self, monkeypatch):
        # Force a real pool regardless of core count (the cpu clamp would
        # otherwise make this serial on small machines).
        monkeypatch.setenv("REPRO_POOL_OVERSUBSCRIBE", "1")
        assert parallel_map(_square, list(range(20)), jobs=4) == [i * i for i in range(20)]

    def test_serial_fallback(self):
        assert parallel_map(_square, [3], jobs=4) == [9]
        assert parallel_map(_square, [2, 3], jobs=1) == [4, 9]

    def test_resolve_jobs_floors_at_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-3) == 1
        assert resolve_jobs(5) == 5

    def test_pool_stats_reports_requested_vs_effective_on_clamp(self, monkeypatch):
        from repro.util import parallel

        monkeypatch.setattr(parallel, "_cpu_limit", lambda: 1)
        assert parallel_map(_square, list(range(8)), jobs=4) == [i * i for i in range(8)]
        stats = pool_stats()
        assert stats["requested_workers"] == 4
        assert stats["effective_workers"] == 1
        assert stats["cpu_clamped"] is True
        assert stats["fallback"] == "cpu-clamp"

    def test_pool_stats_requested_equals_effective_without_clamp(self, monkeypatch):
        from repro.util import parallel

        monkeypatch.setenv("REPRO_POOL_OVERSUBSCRIBE", "1")
        assert parallel_map(_square, list(range(8)), jobs=2) == [i * i for i in range(8)]
        stats = pool_stats()
        assert stats["requested_workers"] == 2
        assert stats["effective_workers"] == 2
        assert stats["cpu_clamped"] is False
        assert stats["fallback"] is None

    def test_effective_jobs_mirrors_parallel_map_resolution(self, monkeypatch):
        from repro.util import parallel
        from repro.util.parallel import effective_jobs

        monkeypatch.setattr(parallel, "_cpu_limit", lambda: 2)
        assert effective_jobs(4) == 2
        assert effective_jobs(1) == 1
        monkeypatch.setattr(parallel, "_cpu_limit", lambda: None)
        assert effective_jobs(4) == 4

    def test_partition_concatenates_to_input(self):
        items = list(range(11))
        parts = partition(items, 4)
        assert len(parts) == 4
        assert [x for part in parts for x in part] == items
        assert max(len(p) for p in parts) - min(len(p) for p in parts) <= 1


class TestSpawnParity:
    """Workers started by spawn (no fork, no copy-on-write inheritance)
    rebuild their world from the shipped config — and attach the parent's
    shared-memory compiled snapshot — yet must return the exact records
    the serial loop does."""

    def test_spawn_pool_equals_serial(self, small_study, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_OVERSUBSCRIBE", "1")
        kw = dict(alexa_count=40, max_prefixes=60)
        serial = collect_coverage_reports(small_study, jobs=1, **kw)
        monkeypatch.setenv("REPRO_POOL_START", "spawn")
        spawned = collect_coverage_reports(small_study, jobs=2, **kw)
        assert list(spawned) == list(serial)
        for label, report in serial.items():
            assert spawned[label] == report
        stats = pool_stats()
        assert stats["start_method"] == "spawn"
        # Spawn workers cannot inherit the parent's memo: each rebuilds
        # its study once, then every unit hits.
        assert stats["worker_stats"]["study_cache"]["rebuilds"] >= 1

    def test_fork_workers_inherit_study(self, small_study, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_OVERSUBSCRIBE", "1")
        monkeypatch.delenv("REPRO_POOL_START", raising=False)
        collect_coverage_reports(small_study, jobs=2, alexa_count=40, max_prefixes=60)
        stats = pool_stats()
        assert stats["start_method"] == "fork"
        worker = stats["worker_stats"]["study_cache"]
        assert worker["rebuilds"] == 0
        assert worker["hits"] >= 1


class TestWorkerContextAndSetup:
    def test_context_and_setup_serial(self):
        out = parallel_map(
            _ctx_unit, [1, 2], jobs=1, context="shared-cfg", setup=_ctx_setup
        )
        assert out == [(1, "shared-cfg", True), (2, "shared-cfg", True)]
        assert worker_context() is None  # restored after the call

    def test_context_and_setup_in_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_OVERSUBSCRIBE", "1")
        out = parallel_map(
            _ctx_unit, list(range(6)), jobs=2, context={"k": 1}, setup=_ctx_setup
        )
        assert out == [(x, {"k": 1}, True) for x in range(6)]

    def test_worker_stats_fold_excludes_prefork_counts(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_OVERSUBSCRIBE", "1")
        register_worker_stats("test_probe", _probe_stats)
        try:
            _PROBE_CALLS["count"] = 7  # pre-existing parent count
            parallel_map(_probe_unit, list(range(6)), jobs=2)
            folded = pool_stats()["worker_stats"]["test_probe"]
            # Only work done inside the pool is attributed to it — the
            # parent's 7 fork-inherited calls are subtracted out.
            assert folded["calls"] == 6
            parallel_map(_probe_unit, list(range(3)), jobs=1)
            assert pool_stats()["worker_stats"]["test_probe"]["calls"] == 3
        finally:
            _WORKER_STATS_PROVIDERS.pop("test_probe", None)

    def test_start_method_override_rejects_garbage(self, monkeypatch):
        from repro.util.parallel import pool_start_method

        monkeypatch.setenv("REPRO_POOL_START", "hyperthread")
        with pytest.raises(ValueError):
            pool_start_method()


_SETUP_RAN = False
_PROBE_CALLS = {"count": 0}


def _ctx_setup(context) -> None:
    global _SETUP_RAN
    _SETUP_RAN = True


def _ctx_unit(x):
    return (x, worker_context(), _SETUP_RAN)


def _probe_stats() -> dict:
    return {"calls": _PROBE_CALLS["count"]}


def _probe_unit(x):
    _PROBE_CALLS["count"] += 1
    return x


def _square(x: int) -> int:
    return x * x
