"""Shape gates against synthetic ExperimentResults.

Each gate gets a hand-built healthy result (mirroring the real seed-7
row/note shapes) plus regressed variants. This pins the gate *logic*
without paying for real experiments; ``tests/test_shape_gates.py`` (the
slow tier) runs the same gates against the real thing.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import SUMMARY_EXPERIMENTS
from repro.experiments.base import ExperimentResult
from repro.validate import GATES, gated_experiment_ids, run_gate, run_gates
from repro.validate.gates import gates_for


def _result(experiment_id, rows, notes, headers=None):
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"synthetic {experiment_id}",
        headers=headers or [],
        rows=rows,
        notes=notes,
    )


def _healthy(experiment_id):
    return HEALTHY[experiment_id]()


def _with_notes(result, **notes):
    return dataclasses.replace(result, notes={**result.notes, **notes})


# --------------------------------------------------------------------------
# healthy synthetic results, shaped like the real seed-7 output


def _tab1():
    rows = [["Comcast", "23,329,000"], ["ATT", "16,028,000"],
            ["TimeWarnerCable", "13,313,000"], ["Windstream", "1,103,000"]]
    rows += [[f"ISP{i}", "2,000,000"] for i in range(8)]
    return _result("tab1", rows, {"providers": 12, "paper_providers": 12,
                                  "largest": "Comcast"})


def _fig1():
    fractions = {"Comcast": 0.832, "ATT": 0.935, "TimeWarnerCable": 0.775,
                 "Verizon": 0.745, "CenturyLink": 0.790, "Charter": 0.501,
                 "Cox": 0.481, "Frontier": 0.569, "Windstream": 0.046}
    rows = [[isp, 1000, frac, 0.1, 0.05] for isp, frac in fractions.items()]
    return _result("fig1", rows, {"overall_one_hop_fraction": 0.770})


def _tab2():
    rows = [
        ["Cox", 22773, 11, 480, "120,80,40,... (11 links)", "nyc,chi,lax,dfw"],
        ["Comcast", 7922, 33, 900, "50,50,50,... (33 links)", "nyc,chi"],
    ]
    return _result("tab2", rows, {
        "Cox_total_links": 11, "Cox_parallel_groups": "10",
        "comcast_sibling_asns_observed": 8, "Comcast_total_links": 33,
    })


def _tab3():
    rows = [["nyc-us", "ATT", 210, 340, 150, 240, 20, 40, 60],
            ["lax-us", "Comcast", 180, 260, 120, 190, 25, 35, 45]]
    return _result("tab3", rows, {
        "top5_org_agreement": 5,
        "top5_order_ours": "ATT,CENT,VZ,COM-2,COM-5",
        "top5_order_paper": "ATT,CENT,VZ,COM-2,COM-5",
    })


def _fig2():
    rows = [["nyc-us", 200, 12, 60, 0.060, 0.300, 320, 0.050, 0.250],
            ["lax-us", 180, 18, 50, 0.100, 0.278, 300, 0.080, 0.220]]
    return _result("fig2", rows, {
        "vps": 2, "speedtest_beats_mlab_vps": 2,
        "mlab_as_frac_range": "0.034-0.114",
        "speedtest_as_frac_range": "0.141-0.425",
    })


def _fig3():
    rows = [["nyc-us", 40, 2, 24, 0.050, 0.600, 0.040, 0.500],
            ["lax-us", 35, 6, 21, 0.171, 0.600, 0.150, 0.550]]
    return _result("fig3", rows, {
        "mlab_peer_frac_range": "0.016-0.200",
        "speedtest_peer_frac_range": "0.500-0.700",
    })


def _fig4():
    rows = [["nyc-us", 50, 8, 42, 0.840], ["lax-us", 44, 10, 36, 0.818]]
    return _result("fig4", rows, {
        "every_vp_has_uncovered_content_borders": True,
        "alexa_uncovered_by_mlab_frac_range": "0.72-0.90",
    })


def _fig5():
    return _result("fig5", [], {
        "ATT_congested_at_0.5": True, "Comcast_congested_at_0.5": False,
        "ATT_peak_median_mbps": 0.580, "ATT_relative_drop": 0.970,
        "Comcast_peak_median_mbps": 24.410, "Comcast_relative_drop": 0.294,
        "ATT_min_hour_samples": 5, "ATT_max_hour_samples": 50,
        "Comcast_min_hour_samples": 7, "Comcast_max_hour_samples": 51,
    })


def _sec41():
    rows = [["2015 window=120s", 5000, 0.733],
            ["2015 window=600s", 5000, 0.748],
            ["2015 window=1200s", 5000, 0.759]]
    return _result("sec41", rows, {
        "matched_after_2015": 0.756, "matched_either_2015": 0.818,
        "matched_after_2017": 0.759,
    })


def _sec54():
    rows = [["nyc-us", "speedtest", 0.28, 0.26, -0.02, 0.60, 0.55, -0.05],
            ["lax-us", "speedtest", 0.31, 0.31, 0.00, 0.62, 0.62, 0.00]]
    return _result("sec54", rows,
                   {"rows_with_nonincreasing_all_coverage": "27/32"})


def _sec62():
    rows = [[0.1, 44, "many pairs..."], [0.2, 27, "fewer pairs..."],
            [0.3, 10, "few pairs..."],
            [0.4, 4, "Cogent->TimeWarnerCable, GTT->ATT, X->Y, Z->W"]]
    return _result("sec62", rows, {
        "ground_truth_congested_org_pairs":
            "Cogent->TimeWarnerCable, GTT->ATT, TATA->Verizon",
    })


HEALTHY = {
    "tab1": _tab1, "fig1": _fig1, "tab2": _tab2, "tab3": _tab3,
    "fig2": _fig2, "fig3": _fig3, "fig4": _fig4, "fig5": _fig5,
    "sec41": _sec41, "sec54": _sec54, "sec62": _sec62,
}


# --------------------------------------------------------------------------
# registry shape


class TestRegistry:
    def test_every_summary_experiment_has_a_gate(self):
        assert gated_experiment_ids() == list(SUMMARY_EXPERIMENTS)
        for experiment_id in SUMMARY_EXPERIMENTS:
            assert gates_for(experiment_id), f"{experiment_id} has no gate"

    def test_gate_names_are_prefixed_by_experiment(self):
        for entry in GATES.values():
            assert entry.name.startswith(entry.experiment_id + ".")
            assert entry.description  # docstring first line captured

    def test_every_gate_passes_its_healthy_synthetic_result(self):
        results = {eid: _healthy(eid) for eid in HEALTHY}
        report = run_gates(results)
        assert report.ok, report.render()
        assert not any(r.skipped for r in report.results)

    def test_partial_sweep_reports_absent_gates_as_skipped(self):
        report = run_gates({"tab1": _healthy("tab1")})
        by_name = {r.name: r for r in report.results}
        assert not by_name["tab1.static_dataset"].skipped
        assert by_name["fig5.diurnal_regimes"].skipped
        assert report.ok  # skipped gates never fail a sweep

    def test_crashing_gate_is_a_named_failure_not_a_crash(self):
        # An empty result starves every note lookup.
        broken = _result("fig5", [], {})
        check = run_gate("fig5.diurnal_regimes", broken)
        assert not check.passed
        assert "raised" in check.violations[0]


# --------------------------------------------------------------------------
# per-gate regressions: one mutation per verdict clause


def _fails(name, result, results=None):
    check = run_gate(name, result, results)
    assert not check.passed, f"{name} accepted a regressed result"
    return check.violations


class TestTab1:
    def test_wrong_largest_provider(self):
        _fails("tab1.static_dataset", _with_notes(_healthy("tab1"), largest="ATT"))

    def test_small_provider_leaks_in(self):
        result = _healthy("tab1")
        result.rows.append(["Tiny ISP", "900,000"])
        _fails("tab1.static_dataset", result)


class TestFig1:
    def test_hop_ordering_inverted(self):
        result = _healthy("fig1")
        for row in result.rows:
            if row[0] == "Charter":
                row[2] = 0.95  # a 5-10 ISP out-hops the top-5 floor
        violations = _fails("fig1.hop_ordering", result)
        assert any("does not clear" in v for v in violations)

    def test_windstream_no_longer_lowest(self):
        result = _healthy("fig1")
        for row in result.rows:
            if row[0] == "Windstream":
                row[2] = 0.50
        _fails("fig1.hop_ordering", result)

    def test_overall_fraction_out_of_band(self):
        _fails("fig1.hop_ordering",
               _with_notes(_healthy("fig1"), overall_one_hop_fraction=0.30))


class TestTab2:
    def test_single_link_world(self):
        _fails("tab2.link_diversity",
               _with_notes(_healthy("tab2"), Cox_total_links=1))

    def test_no_parallel_groups(self):
        _fails("tab2.link_diversity",
               _with_notes(_healthy("tab2"), Cox_parallel_groups="1,1,2"))

    def test_uniform_tests_and_single_metro(self):
        result = _healthy("tab2")
        for row in result.rows:
            row[4] = "50,50,50 (3 links)"
            row[5] = "nyc"
        violations = _fails("tab2.link_diversity", result)
        assert any("metros" in v for v in violations)
        assert any("uniform" in v for v in violations)


class TestTab3:
    def test_order_disagreement(self):
        _fails("tab3.org_ordering",
               _with_notes(_healthy("tab3"), top5_org_agreement=3))

    def test_router_level_below_as_level(self):
        result = _healthy("tab3")
        result.rows[0][3] = result.rows[0][2] - 10
        violations = _fails("tab3.org_ordering", result)
        assert any("router-level" in v for v in violations)


class TestFig2:
    def test_mlab_beats_speedtest_somewhere(self):
        result = _healthy("fig2")
        result.rows[0][4], result.rows[0][5] = 0.4, 0.1
        _fails("fig2.platform_coverage",
               _with_notes(result, speedtest_beats_mlab_vps=1))

    def test_numerator_exceeds_denominator(self):
        result = _healthy("fig2")
        result.rows[0][2] = result.rows[0][1] + 50
        violations = _fails("fig2.platform_coverage", result)
        assert any("denominator" in v for v in violations)

    def test_mlab_coverage_no_longer_small(self):
        _fails("fig2.platform_coverage",
               _with_notes(_healthy("fig2"), mlab_as_frac_range="0.034-0.500"))


class TestFig3:
    def test_peer_band_escape(self):
        _fails("fig3.peer_coverage",
               _with_notes(_healthy("fig3"),
                           speedtest_peer_frac_range="0.010-0.700"))

    def test_peers_not_better_than_all(self):
        fig2 = _healthy("fig2")
        result = _healthy("fig3")
        for row in result.rows:
            row[5] = 0.15  # below fig2's st AS fractions
        _fails("fig3.peer_coverage", result,
               {"fig2": fig2, "fig3": result})

    def test_standalone_run_skips_the_fig2_comparison(self):
        result = _healthy("fig3")
        for row in result.rows:
            row[5] = 0.55
        check = run_gate("fig3.peer_coverage", result)  # no fig2 available
        assert check.passed


class TestFig4:
    def test_a_vp_with_full_mlab_content_coverage(self):
        result = _healthy("fig4")
        result.rows[0][3] = 0
        _fails("fig4.content_gap", result)

    def test_band_escape(self):
        _fails("fig4.content_gap",
               _with_notes(_healthy("fig4"),
                           alexa_uncovered_by_mlab_frac_range="0.20-0.90"))


class TestFig5:
    def test_att_recovers(self):
        regressed = _with_notes(_healthy("fig5"), **{
            "ATT_congested_at_0.5": False,
            "ATT_peak_median_mbps": 12.0,
            "ATT_relative_drop": 0.2,
        })
        violations = _fails("fig5.diurnal_regimes", regressed)
        assert len(violations) >= 3

    def test_comcast_collapses(self):
        regressed = _with_notes(_healthy("fig5"), **{
            "Comcast_congested_at_0.5": True,
            "Comcast_peak_median_mbps": 1.0,
            "Comcast_relative_drop": 0.9,
        })
        _fails("fig5.diurnal_regimes", regressed)

    def test_sample_counts_flatten(self):
        _fails("fig5.diurnal_regimes",
               _with_notes(_healthy("fig5"), ATT_min_hour_samples=40,
                           ATT_max_hour_samples=50))


class TestSec41:
    def test_window_sweep_not_monotone(self):
        result = _healthy("sec41")
        result.rows[2][2] = 0.60
        violations = _fails("sec41.matching_window", result)
        assert any("fell" in v for v in violations)

    def test_either_below_after(self):
        _fails("sec41.matching_window",
               _with_notes(_healthy("sec41"), matched_either_2015=0.50))

    def test_matching_out_of_band(self):
        _fails("sec41.matching_window",
               _with_notes(_healthy("sec41"), matched_after_2017=0.99))


class TestSec54:
    def test_coverage_growth_breaks_stagnation(self):
        _fails("sec54.temporal_stagnation",
               _with_notes(_healthy("sec54"),
                           rows_with_nonincreasing_all_coverage="10/32"))

    def test_fraction_out_of_unit_interval(self):
        result = _healthy("sec54")
        result.rows[0][2] = 1.4
        _fails("sec54.temporal_stagnation", result)


class TestSec62:
    def test_congested_set_grows_with_threshold(self):
        result = _healthy("sec62")
        result.rows[2][1] = 30  # 27 -> 30 while the threshold rises
        _fails("sec62.threshold_ambiguity", result)

    def test_strictest_threshold_empties(self):
        result = _healthy("sec62")
        result.rows[-1][1] = 0
        _fails("sec62.threshold_ambiguity", result)

    def test_ground_truth_pair_vanishes(self):
        result = _healthy("sec62")
        result.rows[-1][2] = "X->Y, Z->W"
        violations = _fails("sec62.threshold_ambiguity", result)
        assert any("ground-truth" in v for v in violations)

    def test_narrow_sweep_rejected(self):
        result = _healthy("sec62")
        for row in result.rows:
            row[1] = 4
        _fails("sec62.threshold_ambiguity", result)


@pytest.mark.parametrize("experiment_id", sorted(HEALTHY))
def test_each_gate_reports_only_for_its_experiment(experiment_id):
    for entry in gates_for(experiment_id):
        check = run_gate(entry.name, _healthy(experiment_id))
        assert check.kind == "gate"
        assert check.passed, check.violations
