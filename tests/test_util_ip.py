"""Unit and property tests for IPv4 helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.ip import (
    format_ip,
    ip_in_prefix,
    parse_ip,
    prefix_netmask,
    prefix_size,
    prefix_str,
)


class TestParseFormat:
    def test_parse_known(self):
        assert parse_ip("10.0.0.1") == (10 << 24) + 1

    def test_format_known(self):
        assert format_ip((192 << 24) + (168 << 16) + 5) == "192.168.0.5"

    def test_parse_rejects_short(self):
        with pytest.raises(ValueError):
            parse_ip("10.0.0")

    def test_parse_rejects_large_octet(self):
        with pytest.raises(ValueError):
            parse_ip("10.0.0.256")

    def test_format_rejects_negative(self):
        with pytest.raises(ValueError):
            format_ip(-1)

    def test_format_rejects_oversize(self):
        with pytest.raises(ValueError):
            format_ip(1 << 32)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip(self, value):
        assert parse_ip(format_ip(value)) == value


class TestPrefixHelpers:
    def test_netmask_24(self):
        assert format_ip(prefix_netmask(24)) == "255.255.255.0"

    def test_netmask_0(self):
        assert prefix_netmask(0) == 0

    def test_netmask_32(self):
        assert prefix_netmask(32) == (1 << 32) - 1

    def test_netmask_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            prefix_netmask(33)

    def test_size(self):
        assert prefix_size(24) == 256
        assert prefix_size(32) == 1
        assert prefix_size(0) == 1 << 32

    def test_in_prefix(self):
        base = parse_ip("10.1.2.0")
        assert ip_in_prefix(parse_ip("10.1.2.200"), base, 24)
        assert not ip_in_prefix(parse_ip("10.1.3.1"), base, 24)

    def test_prefix_str(self):
        assert prefix_str(parse_ip("10.0.0.0"), 8) == "10.0.0.0/8"

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
    )
    def test_base_always_in_own_prefix(self, base, length):
        assert ip_in_prefix(base, base, length)
