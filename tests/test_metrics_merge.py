"""Cross-process metric merging: the edge cases that corrupt silently.

Pool workers ship ``metrics.snapshot()`` payloads home and the parent
folds them in with ``merge_snapshot``. The dangerous inputs are the
quiet ones: a worker that observed nothing (seed-state min=inf /
max=-inf extrema), bucket keys that became strings in a JSON round
trip, and merges interleaved with ``reset()``. Histogram merging must
also stay associative and commutative — merge order depends on worker
completion order, which is nondeterministic.
"""

from __future__ import annotations

import math

import pytest

from repro.obs import metrics


@pytest.fixture(autouse=True)
def _clean_state():
    metrics.set_enabled(None)
    metrics.reset()
    yield
    metrics.set_enabled(None)
    metrics.reset()


def _fresh(name: str) -> metrics.Histogram:
    hist = metrics.histogram(name)
    hist._reset()
    return hist


class TestEmptySnapshotMerge:
    def test_empty_snapshot_is_a_noop(self):
        hist = _fresh("merge_test.wall_s")
        hist.observe(2.0)
        empty = metrics.Histogram("worker")._snapshot()
        assert empty["min"] == 0.0 and empty["max"] == 0.0  # seed state masked
        hist._merge(empty)
        assert hist.count == 1
        assert hist.min == 2.0 and hist.max == 2.0

    def test_raw_seed_state_extrema_do_not_poison(self):
        # A worker could ship the raw seed state (inf/-inf) rather than
        # the masked snapshot; the merge must not adopt either extreme.
        hist = _fresh("merge_test.raw_seed")
        hist.observe(5.0)
        hist._merge({"count": 0, "total": 0.0,
                     "min": float("inf"), "max": float("-inf")})
        assert hist.min == 5.0 and hist.max == 5.0
        # Even with a positive count, non-finite extrema are ignored.
        hist._merge({"count": 2, "total": 6.0,
                     "min": float("inf"), "max": float("-inf"),
                     "buckets": {2: 2}})
        assert hist.count == 3
        assert math.isfinite(hist.min) and math.isfinite(hist.max)

    def test_merge_into_empty_histogram(self):
        donor = metrics.Histogram("w")
        donor.observe(1.5)
        donor.observe(8.0)
        hist = _fresh("merge_test.into_empty")
        hist._merge(donor._snapshot())
        assert hist.count == 2
        assert hist.min == 1.5 and hist.max == 8.0
        assert hist.quantile(0.5) == donor.quantile(0.5)


class TestTypeConflicts:
    def test_same_name_different_kind_raises(self):
        metrics.counter("merge_test.conflict")
        with pytest.raises(TypeError, match="already registered"):
            metrics.histogram("merge_test.conflict")
        with pytest.raises(TypeError, match="already registered"):
            metrics.gauge("merge_test.conflict")

    def test_merge_snapshot_histogram_onto_counter_raises(self):
        metrics.counter("merge_test.kindclash")
        with pytest.raises(TypeError):
            metrics.merge_snapshot(
                {"merge_test.kindclash": {"count": 1, "total": 1.0,
                                          "min": 1.0, "max": 1.0,
                                          "buckets": {1: 1}}}
            )


class TestBucketMergeAlgebra:
    # Dyadic-rational values keep bucket boundaries exact.
    SHARDS = ([0.25, 0.5, 3.0], [1.0, 64.0], [0.0, 0.125, 1024.0, 7.0])

    def _observed(self, values):
        hist = metrics.Histogram("shard")
        for value in values:
            hist.observe(value)
        return hist._snapshot()

    def _merged(self, order) -> dict:
        hist = _fresh(f"merge_test.order_{'_'.join(map(str, order))}")
        for index in order:
            hist._merge(self._observed(self.SHARDS[index]))
        return hist._snapshot()

    def test_merge_is_commutative_and_associative(self):
        reference = self._merged((0, 1, 2))
        for order in ((2, 1, 0), (1, 0, 2), (0, 2, 1)):
            assert self._merged(order) == reference

    def test_merge_equals_direct_observation(self):
        direct = metrics.Histogram("direct")
        for shard in self.SHARDS:
            for value in shard:
                direct.observe(value)
        merged = self._merged((0, 1, 2))
        snap = direct._snapshot()
        assert merged["count"] == snap["count"]
        assert merged["buckets"] == snap["buckets"]
        assert merged["min"] == snap["min"] and merged["max"] == snap["max"]
        assert merged["p50"] == snap["p50"] and merged["p99"] == snap["p99"]

    def test_string_bucket_keys_from_json_round_trip(self):
        import json

        donor = metrics.Histogram("w")
        donor.observe(3.0)
        snap = json.loads(json.dumps(donor._snapshot()))
        assert all(isinstance(k, str) for k in snap["buckets"])
        hist = _fresh("merge_test.jsonkeys")
        hist._merge(snap)
        hist._merge(snap)
        assert hist.buckets == {2: 2}  # int keys, not a str/int split


class TestMergeAfterReset:
    def test_registry_merge_after_reset(self):
        hist = metrics.histogram("merge_test.cycle")
        hist.observe(10.0)
        worker_snap = metrics.snapshot()
        metrics.reset()
        assert hist.count == 0
        metrics.merge_snapshot(worker_snap)
        assert hist.count == 1  # same object, refilled from the snapshot
        assert hist.min == 10.0

    def test_counters_and_gauges_round_trip_through_merge(self):
        metrics.counter("merge_test.events").inc(3)
        metrics.gauge("merge_test.depth").set(2.5)
        snap = metrics.snapshot()
        metrics.reset()
        metrics.merge_snapshot(snap)
        assert metrics.counter("merge_test.events").value == 3
        assert metrics.gauge("merge_test.depth").value == 2.5


class TestObserveMany:
    """Bulk observation must be indistinguishable from a scalar loop."""

    def _values(self, n):
        import random

        rng = random.Random(11)
        vals = [rng.random() * 0.5 for _ in range(n)]
        vals += [0.0, 1e-300, 0.5]  # zero bucket + subnormal edge + max
        return vals

    @pytest.mark.parametrize("n", [4, 200])  # scalar path and numpy path
    def test_matches_sequential_observe(self, n):
        values = self._values(n)
        loop = metrics.Histogram("loop")
        bulk = metrics.Histogram("bulk")
        for value in values:
            loop.observe(value)
        bulk.observe_many(values)
        assert bulk._snapshot() == loop._snapshot()
        assert type(bulk.total) is float  # numpy scalars must not leak out

    def test_empty_block_is_a_no_op(self):
        hist = metrics.Histogram("empty")
        hist.observe_many([])
        assert hist.count == 0
        assert hist.min == float("inf")

    def test_disabled_records_nothing(self):
        hist = metrics.Histogram("off")
        metrics.set_enabled(False)
        try:
            hist.observe_many([1.0] * 64)
        finally:
            metrics.set_enabled(True)
        assert hist.count == 0
