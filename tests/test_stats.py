"""Tests for hourly binning and bias metrics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.bias import bootstrap_mean_ci, hour_sample_imbalance, plan_variance_ratio
from repro.stats.diurnal_bins import HourlySeries, bin_hourly


class TestBinHourly:
    def test_counts_preserved(self):
        series = bin_hourly([(1.5, 10.0), (1.9, 20.0), (23.2, 5.0)])
        assert series.bins[1].count == 2
        assert series.bins[23].count == 1
        assert series.total_count() == 3

    def test_median_and_mean(self):
        series = bin_hourly([(3.0, 10.0), (3.5, 20.0), (3.9, 90.0)])
        assert series.bins[3].median == 20.0
        assert series.bins[3].mean == pytest.approx(40.0)

    def test_even_median(self):
        series = bin_hourly([(5.0, 10.0), (5.5, 30.0)])
        assert series.bins[5].median == 20.0

    def test_empty_bin_is_nan(self):
        series = bin_hourly([])
        assert math.isnan(series.bins[0].median)
        assert series.bins[0].count == 0

    def test_hour_wraps(self):
        series = bin_hourly([(25.0, 1.0)])
        assert series.bins[1].count == 1

    def test_std_zero_for_constant(self):
        series = bin_hourly([(2.0, 7.0), (2.1, 7.0)])
        assert series.bins[2].std == 0.0

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=23.99),
        st.floats(min_value=0, max_value=1000),
    ), max_size=200))
    @settings(max_examples=50)
    def test_total_count_matches_input(self, samples):
        assert bin_hourly(samples).total_count() == len(samples)

    def test_series_requires_24_bins(self):
        with pytest.raises(ValueError):
            HourlySeries(bins=tuple())


class TestPeakDrop:
    def _series(self, offpeak_value, peak_value):
        samples = []
        for hour in (10, 11, 12, 13):
            samples += [(hour + 0.5, offpeak_value)] * 5
        for hour in (19, 20, 21, 22):
            samples += [(hour + 0.5, peak_value)] * 5
        return bin_hourly(samples)

    def test_collapse_detected(self):
        series = self._series(20.0, 0.5)
        assert series.relative_peak_drop() == pytest.approx(0.975)

    def test_no_drop(self):
        series = self._series(20.0, 25.0)
        assert series.relative_peak_drop() == 0.0

    def test_nan_without_data(self):
        assert math.isnan(bin_hourly([]).relative_peak_drop())


class TestBiasMetrics:
    def test_imbalance_zero_when_even(self):
        assert hour_sample_imbalance([10] * 24) == 0.0

    def test_imbalance_positive_when_skewed(self):
        counts = [1] * 12 + [50] * 12
        assert hour_sample_imbalance(counts) > 0.5

    def test_imbalance_rejects_empty(self):
        with pytest.raises(ValueError):
            hour_sample_imbalance([])

    def test_plan_variance_dominates(self):
        plans = [10.0, 100.0] * 20
        throughputs = [p * 0.9 for p in plans]  # plan fully explains spread
        assert plan_variance_ratio(throughputs, plans) > 0.9

    def test_plan_variance_irrelevant(self):
        plans = [50.0] * 20
        throughputs = [10.0, 40.0] * 10  # spread unrelated to plans
        assert plan_variance_ratio(throughputs, plans) < 0.2

    def test_plan_variance_needs_pairs(self):
        with pytest.raises(ValueError):
            plan_variance_ratio([1.0], [1.0])


class TestBootstrap:
    def test_constant_data_tight_ci(self):
        low, high = bootstrap_mean_ci([5.0] * 30)
        assert low == high == 5.0

    def test_ci_contains_sample_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0] * 10
        low, high = bootstrap_mean_ci(values, seed=3)
        assert low <= 3.0 <= high

    def test_deterministic(self):
        values = list(range(20))
        assert bootstrap_mean_ci(values) == bootstrap_mean_ci(values)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.5)
