"""Tests for units helpers and measurement records."""

import pytest

from repro.measurement.records import NDTRecord, TraceHop, TracerouteRecord
from repro.util.units import GBPS, KBPS, MBPS, mbps, seconds_to_hours


class TestUnits:
    def test_constants_ordering(self):
        assert KBPS < MBPS < GBPS

    def test_mbps(self):
        assert mbps(25_000_000.0) == 25.0

    def test_seconds_to_hours(self):
        assert seconds_to_hours(3600.0) == 1.0
        assert seconds_to_hours(86400.0 + 1800.0) == 0.5  # wraps the day

    def test_seconds_to_hours_range(self):
        for s in (0, 1, 86399, 86400, 100000):
            assert 0 <= seconds_to_hours(s) < 24


def _record(**overrides):
    base = dict(
        test_id=1, timestamp_s=0.0, local_hour=12.0, client_ip=9,
        server_id=1, server_ip=2, server_asn=3, server_city="atl",
        download_bps=25_000_000.0, rtt_ms=20.0, retx_rate=0.0,
        congestion_signals=0, gt_client_asn=4, gt_client_org="X",
        gt_crossed_links=(), gt_bottleneck_link=None, gt_bottleneck_kind="access",
    )
    base.update(overrides)
    return NDTRecord(**base)


class TestNDTRecord:
    def test_download_mbps(self):
        assert _record().download_mbps == 25.0

    def test_rtt_extremes_default(self):
        record = _record()
        assert record.rtt_min_ms == 0.0
        assert record.rtt_max_ms == 0.0


class TestTracerouteRecord:
    def _trace(self, hops, reached, dst_ip=99):
        return TracerouteRecord(
            trace_id=1, timestamp_s=0.0, src_ip=1, src_asn=1, dst_ip=dst_ip,
            hops=tuple(hops), reached_destination=reached,
            gt_crossed_links=(), gt_as_path=(1,),
        )

    def test_responding_ips_drops_stars(self):
        trace = self._trace(
            [TraceHop(1, 10, 1.0), TraceHop(2, None, None), TraceHop(3, 11, 2.0)],
            reached=False,
        )
        assert trace.responding_ips() == [10, 11]

    def test_router_hops_strip_destination_only_when_reached(self):
        hops = [TraceHop(1, 10, 1.0), TraceHop(2, 99, 2.0)]
        reached = self._trace(hops, reached=True)
        assert reached.router_hop_ips() == [10]
        unreached = self._trace(hops, reached=False)
        assert unreached.router_hop_ips() == [10, 99]

    def test_router_hops_keep_nonmatching_tail(self):
        # reached flag set but last hop is not the destination address
        # (should not happen, but must not silently drop a router hop).
        hops = [TraceHop(1, 10, 1.0), TraceHop(2, 55, 2.0)]
        trace = self._trace(hops, reached=True)
        assert trace.router_hop_ips() == [10, 55]
