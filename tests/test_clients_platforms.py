"""Tests for the client population and the measurement platforms."""

from collections import Counter

import pytest

from repro.platforms.alexa import make_alexa_targets
from repro.platforms.ark import make_ark_vps
from repro.platforms.clients import ClientPopulation, PopulationConfig
from repro.platforms.mlab import MLabConfig, MLabPlatform
from repro.platforms.speedtest import SpeedtestConfig, SpeedtestPlatform
from repro.topology.asgraph import ASRole
from repro.util.ip import ip_in_prefix


@pytest.fixture(scope="module")
def population(tiny_internet):
    return ClientPopulation(tiny_internet, PopulationConfig(seed=7, clients_per_million=10))


class TestClientPopulation:
    def test_all_access_orgs_have_clients(self, tiny_internet, population):
        for org in ("Comcast", "ATT", "Sonic", "RCN"):
            assert population.clients_of(org)

    def test_sizes_scale_with_subscribers(self, population):
        assert len(population.clients_of("Comcast")) > len(population.clients_of("Cox"))

    def test_client_ips_in_org_prefixes(self, tiny_internet, population):
        for client in population.clients_of("Comcast")[:50]:
            prefixes = tiny_internet.client_prefixes[client.asn]
            assert any(ip_in_prefix(client.ip, p.base, p.length) for p in prefixes)

    def test_client_ips_unique(self, population):
        ips = [c.ip for c in population.all_clients()]
        assert len(ips) == len(set(ips))

    def test_sibling_asns_used(self, population):
        asns = {c.asn for c in population.clients_of("Comcast")}
        assert len(asns) > 1, "clients should spread over sibling ASNs"

    def test_cable_peak_dip(self, tiny_internet, population):
        import random

        client = next(
            c for c in population.clients_of("Comcast") if c.access_tech == "cable"
        )
        rng = random.Random(1)
        peak = population.draw_conditions(client, 21.0, rng)
        rng = random.Random(1)
        off = population.draw_conditions(client, 4.0, rng)
        assert peak.effective_plan_bps < off.effective_plan_bps

    def test_dsl_flat(self, tiny_internet, population):
        import random

        clients = [c for c in population.clients_of("Windstream") if c.access_tech == "dsl"]
        client = clients[0]
        rng = random.Random(1)
        peak = population.draw_conditions(client, 21.0, rng)
        rng = random.Random(1)
        off = population.draw_conditions(client, 4.0, rng)
        assert peak.effective_plan_bps == off.effective_plan_bps

    def test_unknown_org(self, population):
        with pytest.raises(KeyError):
            population.clients_of("NotAnISP")


class TestMLab:
    def test_server_count(self, tiny_internet):
        platform = MLabPlatform(tiny_internet, MLabConfig(seed=7, server_count=30))
        assert len(platform.servers()) == 30

    def test_hosts_are_carriers(self, tiny_internet):
        platform = MLabPlatform(tiny_internet, MLabConfig(seed=7, server_count=30))
        host_roles = {
            tiny_internet.graph.get(s.asn).role for s in platform.servers()
        }
        assert host_roles <= {ASRole.TIER1, ASRole.TRANSIT}

    def test_nearest_selection(self, tiny_internet):
        import random

        platform = MLabPlatform(tiny_internet, MLabConfig(seed=7, server_count=60))
        from repro.topology.geo import city_by_code, geo_distance_km

        server = platform.select_server("atl", random.Random(1), "nearest")
        best = min(
            geo_distance_km(city_by_code("atl"), city_by_code(s.city))
            for s in platform.servers()
        )
        assert geo_distance_km(
            city_by_code("atl"), city_by_code(server.city)
        ) == pytest.approx(best)

    def test_bad_policy_rejected(self, tiny_internet):
        import random

        platform = MLabPlatform(tiny_internet, MLabConfig(seed=7, server_count=10))
        with pytest.raises(ValueError):
            platform.select_server("atl", random.Random(1), "nope")

    def test_daemon_serializes(self, tiny_internet):
        platform = MLabPlatform(tiny_internet, MLabConfig(seed=7, server_count=10))
        site = platform.sites()[0]
        done = platform.daemon_try_acquire(site, now_s=0.0)
        assert done is not None
        assert platform.daemon_try_acquire(site, now_s=1.0) is None  # busy
        assert platform.daemon_try_acquire(site, now_s=done + 1.0) is not None

    def test_regional_sites(self, tiny_internet):
        platform = MLabPlatform(tiny_internet, MLabConfig(seed=7, server_count=60))
        sites = platform.select_regional_sites("nyc", count=5)
        assert 1 <= len(sites) <= 5


class TestSpeedtest:
    def test_count_and_diversity(self, tiny_internet):
        platform = SpeedtestPlatform(tiny_internet, SpeedtestConfig(seed=7, server_count=120))
        servers = platform.servers()
        assert len(servers) == 120
        roles = Counter(tiny_internet.graph.get(s.asn).role for s in servers)
        assert len(roles) >= 3, "hosting should be diverse"


class TestArkAndAlexa:
    def test_sixteen_vps(self, tiny_internet):
        vps = make_ark_vps(tiny_internet)
        assert len(vps) == 16
        assert sum(1 for vp in vps if vp.org_name == "Comcast") == 5

    def test_vp_city_is_home_city(self, tiny_internet):
        for vp in make_ark_vps(tiny_internet):
            assert vp.city in tiny_internet.graph.get(vp.asn).home_cities

    def test_alexa_targets(self, tiny_internet):
        targets = make_alexa_targets(tiny_internet, count=100, seed=7)
        assert len(targets) == 100
        content = sum(
            1 for t in targets
            if tiny_internet.graph.get(t.asn).role is ASRole.CONTENT
        )
        assert content > 60, "most popular sites live on content networks"

    def test_alexa_deterministic(self, tiny_internet):
        one = make_alexa_targets(tiny_internet, count=50, seed=7)
        two = make_alexa_targets(tiny_internet, count=50, seed=7)
        assert [(t.domain, t.ip) for t in one] == [(t.domain, t.ip) for t in two]


class TestUpload:
    def test_upload_rates_asymmetric(self, tiny_internet, population):
        for client in population.clients_of("Comcast")[:20]:
            assert client.upload_rate_bps < client.plan_rate_bps
            assert client.upload_rate_bps > 0

    def test_fiber_less_asymmetric_than_cable(self, population):
        cable = [c for c in population.clients_of("Comcast") if c.access_tech == "cable"]
        fiber = [c for c in population.clients_of("Verizon") if c.access_tech == "fiber"]
        if not cable or not fiber:
            import pytest

            pytest.skip("tech mix sample too small")
        cable_ratio = cable[0].upload_rate_bps / cable[0].plan_rate_bps
        fiber_ratio = fiber[0].upload_rate_bps / fiber[0].plan_rate_bps
        assert fiber_ratio > cable_ratio
