"""Tests for diurnal load profiles."""

from hypothesis import given
from hypothesis import strategies as st

from repro.net.diurnal import (
    DiurnalProfile,
    cable_contention,
    crowdsourced_test_intensity,
)


class TestDiurnalProfile:
    def test_peak_at_evening(self):
        profile = DiurnalProfile(base=0.2, evening_amplitude=0.8)
        assert profile.value(21.0) > profile.value(4.0)

    def test_peak_trough_scan(self):
        profile = DiurnalProfile(base=0.2, evening_amplitude=0.8)
        assert profile.peak_value() > profile.trough_value()
        assert profile.peak_value() <= 0.2 + 0.8 + 1e-9

    def test_wraparound_continuity(self):
        profile = DiurnalProfile(base=0.1, evening_amplitude=0.9, evening_peak_hour=23.5)
        # Just past midnight must still feel the 23:30 peak.
        assert profile.value(0.25) > profile.value(12.0)

    def test_never_negative(self):
        profile = DiurnalProfile(base=-0.5, evening_amplitude=0.1)
        assert profile.value(3.0) == 0.0

    def test_can_exceed_one(self):
        profile = DiurnalProfile(base=0.4, evening_amplitude=1.0)
        assert profile.peak_value() > 1.0  # a congested link

    @given(st.floats(min_value=-100, max_value=100))
    def test_value_defined_for_any_hour(self, hour):
        profile = DiurnalProfile(base=0.3, evening_amplitude=0.5)
        value = profile.value(hour)
        assert 0.0 <= value <= 0.3 + 0.5 + 1e-9

    @given(st.floats(min_value=0, max_value=24))
    def test_24h_periodic(self, hour):
        profile = DiurnalProfile(base=0.3, evening_amplitude=0.5, day_amplitude=0.2)
        assert abs(profile.value(hour) - profile.value(hour + 24)) < 1e-12


class TestDemandCurves:
    def test_test_intensity_peaks_in_evening(self):
        assert crowdsourced_test_intensity(20.5) > crowdsourced_test_intensity(4.0)

    def test_test_intensity_positive(self):
        assert all(crowdsourced_test_intensity(h) > 0 for h in range(24))

    def test_cable_contention_evening_heavy(self):
        assert cable_contention(21.0) > cable_contention(13.0) > cable_contention(4.5)
