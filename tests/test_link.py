"""Tests for link provisioning and the utilization/loss/queue model."""

import pytest

from repro.net.diurnal import DiurnalProfile
from repro.net.link import (
    BASE_LOSS,
    CongestionDirective,
    LinkParams,
    ProvisioningConfig,
    provision_links,
)
from repro.util.units import GBPS


def _params(base=0.2, amp=0.3, capacity=10 * GBPS) -> LinkParams:
    profile = DiurnalProfile(base=base, evening_amplitude=amp)
    return LinkParams(
        link_id=1, capacity_bps=capacity, profile=profile,
        congested=profile.peak_value() >= 0.995,
    )


class TestLinkParams:
    def test_loss_floor_off_peak(self):
        params = _params()
        assert params.loss_rate(4.0) == pytest.approx(BASE_LOSS)

    def test_loss_rises_when_saturated(self):
        congested = _params(base=0.4, amp=0.9)
        assert congested.loss_rate(21.0) > 100 * BASE_LOSS

    def test_loss_monotone_in_utilization(self):
        params = _params(base=0.4, amp=0.9)
        hours = [4.0, 12.0, 18.0, 21.0]
        losses = [params.loss_rate(h) for h in hours]
        utils = [params.utilization(h) for h in hours]
        ordered = sorted(zip(utils, losses))
        assert all(a[1] <= b[1] + 1e-12 for a, b in zip(ordered, ordered[1:]))

    def test_loss_capped(self):
        extreme = _params(base=1.0, amp=9.0)
        assert extreme.loss_rate(21.0) <= 0.25

    def test_queue_grows_with_load(self):
        params = _params(base=0.3, amp=0.7)
        assert params.queue_delay_ms(21.0) > params.queue_delay_ms(4.0)

    def test_available_bw_collapses_at_peak(self):
        congested = _params(base=0.4, amp=0.9)
        assert congested.available_bps(21.0) < congested.available_bps(4.0) / 3


class TestProvisioning:
    def test_every_link_provisioned(self, tiny_internet):
        network = provision_links(tiny_internet, ProvisioningConfig(seed=7))
        assert len(network) == tiny_internet.fabric.interconnect_count()

    def test_deterministic(self, tiny_internet):
        one = provision_links(tiny_internet, ProvisioningConfig(seed=7))
        two = provision_links(tiny_internet, ProvisioningConfig(seed=7))
        for link in tiny_internet.fabric.interconnects()[:50]:
            assert one.params(link.link_id).capacity_bps == two.params(link.link_id).capacity_bps

    def test_directive_congests_org_pair(self, tiny_internet):
        directive = CongestionDirective("GTT", "ATT", peak_load=1.3)
        network = provision_links(
            tiny_internet, ProvisioningConfig(seed=7, directives=(directive,))
        )
        gtt = tiny_internet.as_named("GTT")
        att = tiny_internet.as_named("ATT")
        links = tiny_internet.fabric.links_between(gtt.asn, att.asn)
        assert links, "GTT-ATT adjacency required for this scenario"
        assert all(network.params(l.link_id).congested for l in links)

    def test_city_scoped_directive(self, tiny_internet):
        directive = CongestionDirective("Level3", "Cox", city_code="dfw", peak_load=1.3)
        network = provision_links(
            tiny_internet, ProvisioningConfig(seed=7, directives=(directive,))
        )
        level3 = tiny_internet.as_named("Level3")
        cox = tiny_internet.as_named("Cox")
        for link in tiny_internet.fabric.links_between(level3.asn, cox.asn):
            expected = link.city_code == "dfw"
            assert network.params(link.link_id).congested == expected

    def test_parallel_group_shares_parameters(self, tiny_internet):
        network = provision_links(tiny_internet, ProvisioningConfig(seed=7))
        level3 = tiny_internet.as_named("Level3")
        cox = tiny_internet.as_named("Cox")
        links = tiny_internet.fabric.links_between(level3.asn, cox.asn)
        by_group: dict[int, set[float]] = {}
        for link in links:
            by_group.setdefault(link.group_id, set()).add(
                network.params(link.link_id).capacity_bps
            )
        assert all(len(capacities) == 1 for capacities in by_group.values())

    def test_default_world_mostly_healthy(self, tiny_internet):
        network = provision_links(tiny_internet, ProvisioningConfig(seed=7))
        congested = len(network.congested_link_ids())
        assert congested < 0.05 * len(network)

    def test_path_helpers(self, tiny_internet):
        network = provision_links(tiny_internet, ProvisioningConfig(seed=7))
        links = tuple(l.link_id for l in tiny_internet.fabric.interconnects()[:3])
        loss = network.path_loss(links, 21.0)
        assert 0 <= loss < 1
        available, bottleneck = network.path_available_bps(links, 21.0)
        assert bottleneck in links
        assert available > 0

    def test_unknown_link_raises(self, tiny_internet):
        network = provision_links(tiny_internet, ProvisioningConfig(seed=7))
        with pytest.raises(KeyError):
            network.params(10**9)
