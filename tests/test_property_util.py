"""Property-based tests for the deterministic substrate (ip, rng).

Everything above these two modules assumes they are exact: addresses
round-trip, prefixes contain what the mask says, labelled RNG streams
replay bit-for-bit and never bleed into each other. Hypothesis explores
the corners example tests miss (0.0.0.0, /0, 64-bit label collisions).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.util.ip import (  # noqa: E402
    format_ip,
    ip_in_prefix,
    parse_ip,
    prefix_netmask,
    prefix_size,
    prefix_str,
)
from repro.util.rng import derive_random, derive_rng, derive_seed  # noqa: E402

ips = st.integers(min_value=0, max_value=(1 << 32) - 1)
lengths = st.integers(min_value=0, max_value=32)
seeds = st.integers(min_value=0, max_value=(1 << 31) - 1)
labels = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="\x00"),
    min_size=1, max_size=16,
)


class TestIPRoundTrip:
    @given(ips)
    def test_format_then_parse_is_identity(self, ip):
        assert parse_ip(format_ip(ip)) == ip

    @given(ips)
    def test_format_emits_four_in_range_octets(self, ip):
        octets = format_ip(ip).split(".")
        assert len(octets) == 4
        assert all(0 <= int(o) <= 255 for o in octets)

    @given(st.integers())
    def test_out_of_range_values_are_rejected(self, value):
        if 0 <= value <= (1 << 32) - 1:
            format_ip(value)  # must not raise
        else:
            with pytest.raises(ValueError):
                format_ip(value)


class TestPrefixContainment:
    @given(ips, lengths)
    def test_base_is_inside_its_own_prefix(self, base, length):
        assert ip_in_prefix(base, base, length)

    @given(ips, lengths, st.integers(min_value=0))
    def test_membership_matches_the_arithmetic_definition(self, base, length, offset):
        # Any address inside [network, network + size) is a member; the
        # address right past the top is not (when it exists).
        network = base & prefix_netmask(length)
        size = prefix_size(length)
        member = network + (offset % size)
        assert ip_in_prefix(member, base, length)
        above = network + size
        if above <= (1 << 32) - 1:
            assert not ip_in_prefix(above, base, length)

    @given(ips, lengths)
    def test_mask_and_size_are_consistent(self, base, length):
        # The mask keeps exactly `length` high bits: mask + size wraps to 2^32.
        assert prefix_netmask(length) + prefix_size(length) == 1 << 32

    @given(ips, lengths)
    def test_prefix_str_round_trips_the_network(self, base, length):
        text = prefix_str(base, length)
        addr, _, rendered_len = text.partition("/")
        assert int(rendered_len) == length
        assert parse_ip(addr) == base


class TestRngDiscipline:
    @given(seeds, labels)
    def test_streams_replay_exactly(self, seed, label):
        first = derive_random(seed, label)
        second = derive_random(seed, label)
        assert [first.random() for _ in range(8)] == [
            second.random() for _ in range(8)
        ]
        np_first = derive_rng(seed, label)
        np_second = derive_rng(seed, label)
        assert np_first.random(8).tolist() == np_second.random(8).tolist()

    @given(seeds, labels, labels)
    def test_distinct_labels_fork_independent_streams(self, seed, a, b):
        if a == b:
            return
        assert derive_seed(seed, a) != derive_seed(seed, b)

    @given(seeds, seeds, labels)
    def test_distinct_roots_fork_independent_streams(self, seed_a, seed_b, label):
        if seed_a == seed_b:
            return
        assert derive_seed(seed_a, label) != derive_seed(seed_b, label)

    @given(seeds, labels)
    def test_seed_is_a_stable_64_bit_value(self, seed, label):
        value = derive_seed(seed, label)
        assert 0 <= value < (1 << 64)
        assert value == derive_seed(seed, label)

    @given(seeds, labels, labels)
    def test_nested_labels_extend_the_hierarchy(self, seed, a, b):
        # Forking deeper changes the stream (the child is not the parent).
        assert derive_seed(seed, a, b) != derive_seed(seed, a)
