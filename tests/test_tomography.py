"""Tests for binary and simplified AS-level tomography."""

from repro.core.tomography import (
    binary_tomography,
    score_as_localization,
    simplified_as_tomography,
)
from repro.measurement.records import NDTRecord


class TestBinaryTomography:
    def test_single_bad_link_identified(self):
        observations = [
            ((1, 2, 3), True),
            ((1, 4), False),  # exonerates 1
            ((5, 2), False),  # exonerates 2
        ]
        assert binary_tomography(observations) == {3}

    def test_good_paths_exonerate(self):
        observations = [((1, 2), True), ((1,), False), ((2,), False)]
        # Both candidates exonerated: the bad path is unexplainable.
        assert binary_tomography(observations) == set()

    def test_shared_link_preferred(self):
        # Greedy picks the link covering the most bad paths.
        observations = [
            ((1, 9), True),
            ((2, 9), True),
            ((3, 9), True),
        ]
        assert binary_tomography(observations) == {9}

    def test_multiple_bad_links(self):
        observations = [
            ((1, 2), True),
            ((3, 4), True),
            ((2,), False),
            ((4,), False),
        ]
        assert binary_tomography(observations) == {1, 3}

    def test_no_observations(self):
        assert binary_tomography([]) == set()

    def test_all_good(self):
        assert binary_tomography([((1, 2), False)]) == set()


def _record(test_id, hour, mbps, org="ISP", server_asn=1):
    return NDTRecord(
        test_id=test_id, timestamp_s=hour * 3600.0, local_hour=hour,
        client_ip=50, server_id=1, server_ip=1, server_asn=server_asn,
        server_city="atl", download_bps=mbps * 1e6, rtt_ms=20.0,
        retx_rate=0.0, congestion_signals=0, gt_client_asn=2,
        gt_client_org=org, gt_crossed_links=(), gt_bottleneck_link=None,
        gt_bottleneck_kind="access",
    )


def _pair_records(offpeak_mbps, peak_mbps, n=20):
    records = []
    tid = 0
    for hour in (10, 11, 12, 13):
        for _ in range(n):
            tid += 1
            records.append(_record(tid, hour + 0.5, offpeak_mbps))
    for hour in (19, 20, 21, 22):
        for _ in range(n):
            tid += 1
            records.append(_record(tid, hour + 0.5, peak_mbps))
    return records


class TestSimplifiedASTomography:
    def test_congested_pair_with_clean_alternate(self):
        tests = {
            ("S1", "A"): _pair_records(20.0, 1.0),
            ("S2", "A"): _pair_records(20.0, 19.0),
        }
        result = simplified_as_tomography(tests, threshold=0.5)
        assert result.inferred_congested_pairs() == [("S1", "A")]

    def test_no_alternate_no_inference(self):
        # Without a clean second source, the access link cannot be ruled
        # out, so the method must not blame the interdomain link.
        tests = {("S1", "A"): _pair_records(20.0, 1.0)}
        result = simplified_as_tomography(tests, threshold=0.5)
        assert result.inferred_congested_pairs() == []
        assert result.pairs[0].verdict.congested

    def test_all_sources_congested_suggests_access(self):
        tests = {
            ("S1", "A"): _pair_records(20.0, 1.0),
            ("S2", "A"): _pair_records(20.0, 1.5),
        }
        result = simplified_as_tomography(tests, threshold=0.5)
        assert result.inferred_congested_pairs() == []

    def test_min_samples_guard(self):
        tests = {
            ("S1", "A"): _pair_records(20.0, 1.0, n=2),
            ("S2", "A"): _pair_records(20.0, 19.0, n=2),
        }
        result = simplified_as_tomography(tests, threshold=0.5, min_samples=100)
        assert result.inferred_congested_pairs() == []


class TestScoring:
    def _result(self, inferred):
        tests = {}
        for pair in inferred:
            tests[pair] = _pair_records(20.0, 1.0)
            tests[("CLEAN", pair[1])] = _pair_records(20.0, 19.0)
        return simplified_as_tomography(tests, threshold=0.5)

    def test_perfect(self):
        result = self._result([("S1", "A")])
        score = score_as_localization(result, {("S1", "A")}, set())
        assert score.precision == 1.0 and score.recall == 1.0

    def test_mislocalization_tracked(self):
        result = self._result([("S1", "A")])
        score = score_as_localization(result, set(), {("S1", "A")})
        assert score.mislocalized_pairs == (("S1", "A"),)
        assert score.precision == 0.0

    def test_missed(self):
        result = self._result([])
        score = score_as_localization(result, {("S9", "B")}, set())
        assert score.missed_pairs == (("S9", "B"),)
        assert score.recall == 0.0
