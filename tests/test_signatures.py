"""Tests for TCP congestion signatures."""

import pytest

from repro.core.signatures import (
    FlowLimit,
    FlowRTTSignature,
    classify_flow,
    signature_from_observation,
)


def _sig(baseline, rtt_min, rtt_max):
    return FlowRTTSignature(
        baseline_rtt_ms=baseline, rtt_min_ms=rtt_min, rtt_max_ms=rtt_max
    )


class TestFeatures:
    def test_floor_elevation(self):
        assert _sig(20, 30, 31).floor_elevation() == pytest.approx(0.5)

    def test_floor_never_negative(self):
        assert _sig(20, 18, 30).floor_elevation() == 0.0

    def test_floor_delta(self):
        assert _sig(20, 55, 56).floor_delta_ms() == pytest.approx(35.0)

    def test_self_inflation(self):
        assert _sig(20, 20, 45).self_inflation() == pytest.approx(1.25)

    def test_invalid_baseline(self):
        with pytest.raises(ValueError):
            _sig(0, 10, 20).floor_elevation()


class TestClassifier:
    def test_external_congestion(self):
        # Floor already 40 ms above a 20 ms baseline: standing queue.
        assert classify_flow(_sig(20, 60, 64)) is FlowLimit.EXTERNAL_CONGESTION

    def test_self_induced(self):
        # Floor at baseline; the flow inflated its own RTT substantially.
        assert classify_flow(_sig(20, 21, 46)) is FlowLimit.SELF_INDUCED

    def test_unconstrained(self):
        assert classify_flow(_sig(20, 21, 23)) is FlowLimit.UNCONSTRAINED

    def test_small_absolute_floor_not_external(self):
        # 40% relative but only 4 ms absolute: transient noise, not a
        # standing queue.
        assert classify_flow(_sig(10, 14, 15)) is not FlowLimit.EXTERNAL_CONGESTION

    def test_threshold_parameters(self):
        sig = _sig(20, 30, 32)  # 50% floor elevation, 6.7% self inflation
        assert classify_flow(sig, floor_threshold=0.6) is FlowLimit.UNCONSTRAINED
        assert classify_flow(sig, floor_threshold=0.6, inflation_threshold=0.05) is (
            FlowLimit.SELF_INDUCED
        )
        assert classify_flow(sig, floor_threshold=0.4) is FlowLimit.EXTERNAL_CONGESTION


class TestDerivation:
    def test_access_flow_gets_buffer(self):
        sig = signature_from_observation(20.0, 21.0, "access")
        assert sig.rtt_max_ms > sig.rtt_min_ms + 10

    def test_interconnect_flow_small_self_buffer(self):
        sig = signature_from_observation(20.0, 70.0, "interconnect")
        assert sig.rtt_max_ms - sig.rtt_min_ms < 5


class TestEndToEnd:
    def test_model_produces_separable_signatures(self, small_study):
        """Flows through the congested GTT-ATT link at peak must carry an
        elevated floor; access-limited off-peak flows must not."""
        from repro.platforms.campaign import CampaignConfig

        result = small_study.run_campaign(
            CampaignConfig(seed=21, days=7, total_tests=3000, orgs=("ATT",))
        )
        congested_ids = small_study.links.congested_link_ids()
        external, clean = [], []
        for record in result.ndt_records:
            crossed_congested = any(
                l in congested_ids
                and small_study.links.params(l).utilization(record.local_hour) > 1.0
                for l in record.gt_crossed_links
            )
            if crossed_congested:
                external.append(record)
            elif record.gt_bottleneck_kind == "access" and record.local_hour < 7:
                clean.append(record)
        if not external or not clean:
            pytest.skip("campaign sample lacks one of the two classes")
        mean_ext = sum(r.rtt_min_ms for r in external) / len(external)
        mean_clean = sum(r.rtt_min_ms for r in clean) / len(clean)
        assert mean_ext > mean_clean + 10
