"""Tests for reverse-DNS naming and parsing."""

from repro.topology.dns import (
    ReverseDNS,
    border_interface_name,
    domain_of,
    neighbor_tag,
    parse_interface_name,
)


class TestNaming:
    def test_paper_example(self):
        name = border_interface_name("Level3", "Cox", "edge", 5, "Dallas", 3)
        assert name == "COX-COMMUNI.edge5.Dallas3.Level3.net"

    def test_domain_strips_punctuation(self):
        assert domain_of("Time Warner-Cable") == "TimeWarnerCable.net"

    def test_neighbor_tag_short(self):
        assert neighbor_tag("Cox") == "COX-COMMUNI"

    def test_neighbor_tag_long(self):
        tag = neighbor_tag("HurricaneElectricBackbone")
        assert len(tag) <= 12


class TestParsing:
    def test_roundtrip(self):
        name = border_interface_name("Level3", "Cox", "edge", 5, "Dallas", 3)
        parsed = parse_interface_name(name)
        assert parsed is not None
        assert parsed.role == "edge"
        assert parsed.router_index == 5
        assert parsed.city == "Dallas"
        assert parsed.domain == "Level3.net"

    def test_router_key_groups_same_router(self):
        one = parse_interface_name("COX-COMMUNI.edge5.Dallas3.Level3.net")
        two = parse_interface_name("COX-COMMUNI.edge5.Dallas3.Level3.net")
        assert one.router_key() == two.router_key()

    def test_router_key_distinguishes_routers(self):
        one = parse_interface_name("COX-COMMUNI.edge5.Dallas3.Level3.net")
        two = parse_interface_name("COX-COMMUNI.ear1.SanJose3.Level3.net")
        assert one.router_key() != two.router_key()

    def test_parse_garbage(self):
        assert parse_interface_name("not-a-ptr-name") is None


class TestReverseDNS:
    def test_lookup_roundtrip(self):
        rdns = ReverseDNS()
        rdns.set_name(12345, "a.edge1.Dallas1.X.net")
        assert rdns.lookup(12345) == "a.edge1.Dallas1.X.net"

    def test_missing_record(self):
        assert ReverseDNS().lookup(1) is None
