"""Tests for per-IP-link congestion localization (the future-work analysis)."""

import pytest

from repro.core.localization import localize_per_link
from repro.core.matching import match_ndt_to_traceroutes
from repro.inference.mapit import MapIt
from repro.platforms.campaign import CampaignConfig


@pytest.fixture(scope="module")
def localization(small_study):
    result = small_study.run_campaign(
        CampaignConfig(seed=61, days=21, total_tests=5000, orgs=("ATT", "Comcast"))
    )
    report = match_ndt_to_traceroutes(result.ndt_records, result.traceroute_records)
    traces = {t.trace_id: t for t in result.traceroute_records}
    pairs = [
        (r, traces[report.matched[r.test_id]])
        for r in result.ndt_records
        if r.test_id in report.matched
    ]
    mapit_result = MapIt(small_study.oracle, small_study.internet.graph).infer(
        [t.router_hop_ips() for _r, t in pairs]
    )
    return small_study, localize_per_link(pairs, mapit_result)


class TestLocalization:
    def test_links_carry_tests(self, localization):
        _study, result = localization
        assert result.verdicts
        assert all(v.test_count > 0 for v in result.verdicts)

    def test_thin_links_never_called_congested(self, localization):
        _study, result = localization
        for verdict in result.verdicts:
            if verdict.test_count < 50:
                assert not verdict.verdict.congested

    def test_congested_links_match_ground_truth(self, localization):
        study, result = localization
        gt_pairs = {
            study.internet.fabric.interconnect(link_id).ip_pair()
            for link_id in study.links.congested_link_ids()
        }
        called = {v.link.ip_pair() for v in result.congested_links()}
        if called:
            precision = len(called & gt_pairs) / len(called)
            assert precision >= 0.5

    def test_some_congested_link_found(self, localization):
        """The GTT-ATT directive must surface at the per-link level when
        enough ATT tests crossed a congested interface."""
        study, result = localization
        gt_pairs = {
            study.internet.fabric.interconnect(link_id).ip_pair()
            for link_id in study.links.congested_link_ids()
        }
        classifiable = [
            v for v in result.verdicts
            if v.test_count >= 50 and v.link.ip_pair() in gt_pairs
        ]
        if not classifiable:
            pytest.skip("no congested link accumulated 50 matched tests at this scale")
        assert any(v.verdict.congested for v in classifiable)

    def test_by_ip_pair_index(self, localization):
        _study, result = localization
        index = result.by_ip_pair()
        assert len(index) == len(result.verdicts)
