"""Tests for TSLP probing and level-shift detection."""

import pytest

from repro.measurement.tslp import TSLPProber, TSLPSample, TSLPSeries, detect_level_shift
from repro.net.link import CongestionDirective, ProvisioningConfig, provision_links
from repro.routing.bgp import BGPRouting
from repro.routing.forwarding import Forwarder


@pytest.fixture(scope="module")
def tslp_world(tiny_internet):
    links = provision_links(
        tiny_internet,
        ProvisioningConfig(
            seed=7, directives=(CongestionDirective("GTT", "ATT", peak_load=1.35),)
        ),
    )
    forwarder = Forwarder(tiny_internet, BGPRouting(tiny_internet.graph))
    prober = TSLPProber(tiny_internet, links, forwarder, seed=7)
    return tiny_internet, links, prober


def _links_between(internet, a_name, b_name):
    a = internet.as_named(a_name)
    b = internet.as_named(b_name)
    return internet.fabric.links_between(a.asn, b.asn)


class TestProbing:
    def test_sample_structure(self, tslp_world):
        internet, _links, prober = tslp_world
        link = _links_between(internet, "GTT", "ATT")[0]
        series = prober.probe_day(7922, "bos", link, rounds_per_hour=2)
        assert len(series.samples) == 48
        assert all(s.far_rtt_ms >= s.near_rtt_ms for s in series.samples)

    def test_congested_link_detected(self, tslp_world):
        internet, links, prober = tslp_world
        congested = [
            l for l in _links_between(internet, "GTT", "ATT")
            if links.params(l.link_id).congested
        ]
        assert congested
        series = prober.probe_day(7922, "bos", congested[0])
        verdict = detect_level_shift(series)
        assert verdict.congested
        assert verdict.shift_ms > 10

    def test_healthy_link_not_detected(self, tslp_world):
        internet, links, prober = tslp_world
        healthy = [
            l for l in _links_between(internet, "Level3", "Comcast")
            if not links.params(l.link_id).congested
        ]
        assert healthy
        series = prober.probe_day(7922, "bos", healthy[0])
        verdict = detect_level_shift(series)
        assert not verdict.congested


class TestLevelShift:
    def _series(self, off_diff, peak_diff):
        samples = []
        for hour in (3, 4, 5, 6):
            samples.append(TSLPSample(hour=hour + 0.5, near_rtt_ms=10, far_rtt_ms=10 + off_diff))
        for hour in (19, 20, 21, 22):
            samples.append(TSLPSample(hour=hour + 0.5, near_rtt_ms=10, far_rtt_ms=10 + peak_diff))
        return TSLPSeries(link_id=1, samples=tuple(samples))

    def test_shift_detected(self):
        verdict = detect_level_shift(self._series(0.5, 40.0))
        assert verdict.congested and verdict.shift_ms == pytest.approx(39.5)

    def test_no_shift(self):
        verdict = detect_level_shift(self._series(0.5, 2.0))
        assert not verdict.congested

    def test_missing_window_raises(self):
        series = TSLPSeries(link_id=1, samples=(TSLPSample(1.0, 10, 11),))
        with pytest.raises(ValueError):
            series.window_min_differential((19, 20))
