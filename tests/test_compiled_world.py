"""The compiled-world agreement contract, exercised as unit tests.

:mod:`repro.net.compiled` flattens the object graph into numpy tables;
every query it answers must equal the object-graph answer exactly (the
``compiled.world_agreement`` validate contract enforces the same thing on
full-scale worlds at validate time). These tests cover the tiny world
exhaustively — every prefix edge, every AS row, every router — plus the
shared-memory export/attach round trip and the oracle priming fast path.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.inference.borders import OriginOracle
from repro.net.compiled import (
    NO_ORIGIN,
    attach_shared,
    clear_compile_cache,
    compile_world,
    compiled_enabled,
    world_digest,
)
from repro.topology.generator import InternetConfig, generate_internet


@pytest.fixture(scope="module")
def world(tiny_internet):
    return compile_world(tiny_internet)


class TestLPMAgreement:
    def test_prefix_edges_and_interiors(self, tiny_internet, world):
        table = tiny_internet.prefix_table
        rng = random.Random(7)
        for prefix in table.prefixes():
            size = 1 << (32 - prefix.length)
            for ip in (prefix.base, prefix.base + size - 1,
                       prefix.base + rng.randrange(size)):
                assert world.origin(ip) == table.origin_asn(ip)

    def test_random_space_including_gaps(self, tiny_internet, world):
        table = tiny_internet.prefix_table
        rng = random.Random(11)
        for _ in range(500):
            ip = rng.randrange(1 << 32)
            assert world.origin(ip) == table.origin_asn(ip)

    def test_batch_matches_scalar(self, world):
        rng = random.Random(13)
        ips = [rng.randrange(1 << 32) for _ in range(400)]
        ips += [int(s) for s in world.lpm_starts[:50]]
        batch = world.origin_batch(np.asarray(ips, dtype=np.int64))
        for ip, raw in zip(ips, batch.tolist()):
            scalar = world.origin(ip)
            assert (None if raw == NO_ORIGIN else raw) == scalar

    def test_intervals_sorted_and_disjoint(self, world):
        starts, ends = world.lpm_starts, world.lpm_ends
        assert (starts < ends).all()
        assert (starts[1:] >= ends[:-1]).all()


class TestIXPAgreement:
    def test_members_and_nonmembers(self, tiny_internet, world):
        spans = [
            (p.base, p.base + (1 << (32 - p.length)))
            for p in tiny_internet.ixps.prefixes()
        ]
        rng = random.Random(17)
        probes = {rng.randrange(1 << 32) for _ in range(300)}
        for lo, hi in spans:
            probes.update((lo, hi - 1, lo - 1, hi))
        for ip in probes:
            expected = any(lo <= ip < hi for lo, hi in spans)
            assert world.is_ixp(ip) == expected
        batch = world.is_ixp_batch(np.asarray(sorted(probes), dtype=np.int64))
        assert batch.tolist() == [world.is_ixp(ip) for ip in sorted(probes)]


class TestAdjacencyAgreement:
    def test_every_as_row(self, tiny_internet, world):
        graph = tiny_internet.graph
        for asn in graph.asns():
            assert world.neighbors_of(asn) == graph.neighbors(asn)

    def test_relationships_including_non_adjacent(self, tiny_internet, world):
        graph = tiny_internet.graph
        asns = graph.asns()
        rng = random.Random(19)
        for _ in range(500):
            a = asns[rng.randrange(len(asns))]
            b = asns[rng.randrange(len(asns))]
            assert world.relationship(a, b) == graph.relationship(a, b)

    def test_unknown_asn(self, world):
        assert world.relationship(999_999_999, 1) is None
        assert world.neighbors_of(999_999_999) == {}


class TestFabricAgreement:
    def test_every_interface_owner(self, tiny_internet, world):
        fabric = tiny_internet.fabric
        for iface in fabric.interfaces():
            assert world.owner_asn_of_ip(iface.ip) == fabric.router(iface.router_id).asn

    def test_router_port_order_preserved(self, tiny_internet, world):
        fabric = tiny_internet.fabric
        routers = {i.router_id for i in fabric.interfaces()}
        for router_id in routers:
            expected = tuple(i.ip for i in fabric.interfaces_of(router_id))
            assert world.interface_ips_of(router_id) == expected

    def test_unknown_lookups(self, world):
        assert world.owner_asn_of_ip(0) is None
        assert world.interface_ips_of(-1) == ()

    def test_link_rows(self, tiny_internet, world):
        for link in tiny_internet.fabric.interconnects():
            assert world.link_row(link.link_id) == (
                link.a_asn, link.b_asn, link.a_router_id, link.b_router_id,
                link.a_ip, link.b_ip, link.numbered_from_asn, link.group_id,
            )
        assert world.link_row(-5) is None


class TestCompileCache:
    def test_memoized_per_digest(self, tiny_internet, world):
        assert compile_world(tiny_internet) is world

    def test_digest_distinguishes_worlds(self, tiny_internet):
        other = generate_internet(InternetConfig(seed=8, n_stub=60, n_transit=6))
        assert world_digest(other) != world_digest(tiny_internet)

    def test_enabled_by_default_with_escape_hatch(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED", raising=False)
        assert compiled_enabled()
        monkeypatch.setenv("REPRO_COMPILED", "0")
        assert not compiled_enabled()


class TestSharedMemoryRoundTrip:
    def test_export_attach_arrays_equal(self, tiny_internet):
        world = compile_world(tiny_internet)
        export = world.export_shared()
        try:
            attached = attach_shared(export.handle)
            assert attached.digest == world.digest
            assert attached.seed == world.seed
            for name in world._ARRAY_FIELDS:
                np.testing.assert_array_equal(
                    getattr(attached, name), getattr(world, name)
                )
            # Attached worlds answer queries identically.
            table = tiny_internet.prefix_table
            rng = random.Random(23)
            for _ in range(100):
                ip = rng.randrange(1 << 32)
                assert attached.origin(ip) == table.origin_asn(ip)
        finally:
            # Drop the attached registry (closes its block handles) before
            # unlinking the parent's export.
            clear_compile_cache()
            export.close(unlink=True)

    def test_attach_registers_in_compile_cache(self, tiny_internet):
        world = compile_world(tiny_internet)
        export = world.export_shared()
        try:
            attached = attach_shared(export.handle)
            assert compile_world(tiny_internet) is attached
        finally:
            clear_compile_cache()
            export.close(unlink=True)


class TestOraclePriming:
    def _oracle(self, internet):
        return OriginOracle(
            internet.prefix_table, internet.orgs, internet.ixps.prefixes()
        )

    def test_primed_values_equal_trie_walk(self, tiny_internet):
        world = compile_world(tiny_internet)
        rng = random.Random(29)
        ips = [i.ip for i in tiny_internet.fabric.interfaces()[:200]]
        ips += [rng.randrange(1 << 32) for _ in range(200)]
        primed = self._oracle(tiny_internet)
        count = world.prime_oracle(primed, ips)
        assert count == len(set(ips))
        fresh = self._oracle(tiny_internet)
        for ip in ips:
            assert primed._origin_cache[ip] == fresh.origin(ip)
            assert primed._ixp_cache[ip] == fresh.is_ixp(ip)

    def test_priming_skips_already_cached(self, tiny_internet):
        world = compile_world(tiny_internet)
        oracle = self._oracle(tiny_internet)
        ips = [i.ip for i in tiny_internet.fabric.interfaces()[:50]]
        assert world.prime_oracle(oracle, ips) == len(set(ips))
        assert world.prime_oracle(oracle, ips) == 0

    def test_oracle_with_different_ixp_screen_rejected(self, tiny_internet):
        world = compile_world(tiny_internet)
        ixp_prefixes = tiny_internet.ixps.prefixes()
        assert ixp_prefixes, "tiny world should have IXP space"
        foreign = OriginOracle(
            tiny_internet.prefix_table, tiny_internet.orgs, ixp_prefixes[:-1]
        )
        assert world.prime_oracle(foreign, [1, 2, 3]) == 0
