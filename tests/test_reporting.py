"""Tests for ASCII charts and markdown report rendering."""

import math

import pytest

from repro.experiments.base import ExperimentResult
from repro.reporting.ascii import bar_chart, hourly_series_chart, stacked_bar_chart
from repro.reporting.markdown import render_markdown_report


class TestBarChart:
    def test_renders_all_series(self):
        chart = bar_chart([("A", {"x": 10, "y": 5}), ("B", {"x": 2})])
        assert "A" in chart and "B" in chart
        assert chart.count("|") == 3  # three bars

    def test_log_scale_compresses(self):
        linear = bar_chart([("A", {"x": 1000}), ("B", {"x": 1})], width=40)
        logged = bar_chart([("A", {"x": 1000}), ("B", {"x": 1})], width=40, log_scale=True)
        small_linear = [l for l in linear.splitlines() if l.startswith("B")][0]
        small_logged = [l for l in logged.splitlines() if l.startswith("B")][0]
        assert small_logged.count("█") > small_linear.count("█")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([])

    def test_zero_values(self):
        chart = bar_chart([("A", {"x": 0})])
        assert "A" in chart


class TestStackedBar:
    def test_bar_width_constant(self):
        chart = stacked_bar_chart(
            [("A", {"one": 0.9, "two": 0.1}), ("B", {"one": 0.2, "two": 0.8})],
            width=30,
        )
        bars = [line for line in chart.splitlines() if line.rstrip().endswith("|")]
        widths = {line.index("|", 1) - line.index("|") for line in bars}
        # every bar spans exactly `width` cells between its pipes
        for line in bars:
            inner = line[line.index("|") + 1 : line.rindex("|")]
            assert len(inner) == 30

    def test_legend_present(self):
        chart = stacked_bar_chart([("A", {"one": 1.0, "two": 0.0})])
        assert "█=one" in chart

    def test_too_many_categories(self):
        with pytest.raises(ValueError):
            stacked_bar_chart([("A", {str(i): 1.0 for i in range(9)})])


class TestHourlySeries:
    def test_requires_24(self):
        with pytest.raises(ValueError):
            hourly_series_chart([1.0] * 23)

    def test_nan_renders_blank(self):
        values = [math.nan] * 24
        chart = hourly_series_chart(values)
        body = [l for l in chart.splitlines() if l.startswith("|")]
        assert all(set(line[1:25]) <= {" "} for line in body)

    def test_peak_column_full(self):
        values = [0.0] * 24
        values[21] = 100.0
        chart = hourly_series_chart(values, height=4)
        top_row = [l for l in chart.splitlines() if l.startswith("|")][0]
        assert top_row[22] == "█"  # column for hour 21 (offset by pipe)


class TestMarkdownReport:
    def _result(self):
        return ExperimentResult(
            experiment_id="fig1",
            title="demo",
            headers=["ISP", "tests", "1 hop", "2 hops", "2+ hops", "paper 1-hop"],
            rows=[["Comcast", 100, 0.9, 0.1, 0.0, 0.96]],
            notes={"overall_one_hop_fraction": 0.9},
        )

    def test_summary_and_sections(self):
        report = render_markdown_report([self._result()])
        assert "| `fig1` |" in report
        assert "## fig1: demo" in report
        assert "overall_one_hop_fraction" in report

    def test_fig1_gets_stacked_chart(self):
        report = render_markdown_report([self._result()])
        assert "█=1 hop" in report

    def test_generic_result_no_figure(self):
        result = ExperimentResult("tab1", "t", ["a"], [["x"]], {})
        report = render_markdown_report([result])
        assert "```" not in report
