"""Tests for the Mann-Whitney U implementation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.significance import mann_whitney_u


class TestMannWhitney:
    def test_clearly_smaller(self):
        result = mann_whitney_u([1, 2, 3] * 10, [10, 11, 12] * 10)
        assert result.p_value < 1e-6
        assert result.significant()

    def test_clearly_larger(self):
        result = mann_whitney_u([10, 11, 12] * 10, [1, 2, 3] * 10)
        assert result.p_value > 0.999
        assert not result.significant()

    def test_identical_distributions_not_significant(self):
        a = [1, 2, 3, 4, 5] * 8
        b = [1, 2, 3, 4, 5] * 8
        result = mann_whitney_u(a, b)
        assert 0.3 < result.p_value < 0.7

    def test_ties_handled(self):
        result = mann_whitney_u([1, 1, 1, 2], [2, 2, 3, 3])
        assert 0 < result.p_value < 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])

    def test_all_tied_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([5.0] * 5, [5.0] * 5)

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        a = [3.1, 4.5, 2.2, 8.0, 5.5, 1.1, 9.3, 4.4]
        b = [7.2, 8.8, 6.1, 9.9, 10.4, 5.9, 12.0, 7.7]
        ours = mann_whitney_u(a, b)
        reference = scipy_stats.mannwhitneyu(
            a, b, alternative="less", use_continuity=True, method="asymptotic"
        )
        assert ours.u_statistic == pytest.approx(reference.statistic)
        assert ours.p_value == pytest.approx(reference.pvalue, rel=0.02)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=3, max_size=30),
        st.lists(st.floats(min_value=0, max_value=100), min_size=3, max_size=30),
    )
    @settings(max_examples=60)
    def test_p_value_in_unit_interval(self, a, b):
        if len(set(a) | set(b)) < 2:
            return  # degenerate all-tied case raises by design
        result = mann_whitney_u(a, b)
        assert 0.0 <= result.p_value <= 1.0

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=5, max_size=25))
    @settings(max_examples=40)
    def test_antisymmetry(self, values):
        if len(set(values)) < 2:
            return
        shifted = [v + 50 for v in values]
        low = mann_whitney_u(values, shifted)
        high = mann_whitney_u(shifted, values)
        assert low.p_value < high.p_value
