"""Tests for geography and propagation delay."""

import pytest

from repro.topology.geo import (
    CITIES,
    city_by_code,
    geo_distance_km,
    propagation_delay_ms,
)


class TestCities:
    def test_codes_unique(self):
        codes = [c.code for c in CITIES]
        assert len(codes) == len(set(codes))

    def test_lookup(self):
        assert city_by_code("atl").name == "Atlanta"

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            city_by_code("zzz")

    def test_weights_positive(self):
        assert all(c.population_weight > 0 for c in CITIES)


class TestDistance:
    def test_self_distance_zero(self):
        atl = city_by_code("atl")
        assert geo_distance_km(atl, atl) == 0.0

    def test_symmetric(self):
        a, b = city_by_code("nyc"), city_by_code("lax")
        assert geo_distance_km(a, b) == pytest.approx(geo_distance_km(b, a))

    def test_nyc_lax_plausible(self):
        # Great-circle NYC-LA is ~3940 km.
        distance = geo_distance_km(city_by_code("nyc"), city_by_code("lax"))
        assert 3700 < distance < 4200

    def test_triangle_inequality_sample(self):
        nyc, chi, lax = (city_by_code(c) for c in ("nyc", "chi", "lax"))
        assert geo_distance_km(nyc, lax) <= (
            geo_distance_km(nyc, chi) + geo_distance_km(chi, lax) + 1e-6
        )


class TestDelay:
    def test_metro_floor(self):
        atl = city_by_code("atl")
        assert propagation_delay_ms(atl, atl) >= 0.2

    def test_transcontinental_delay(self):
        # One-way NYC-LA in fiber with route inflation: roughly 25-40 ms.
        delay = propagation_delay_ms(city_by_code("nyc"), city_by_code("lax"))
        assert 20 < delay < 45

    def test_monotone_with_distance(self):
        nyc = city_by_code("nyc")
        assert propagation_delay_ms(nyc, city_by_code("phl")) < propagation_delay_ms(
            nyc, city_by_code("sea")
        )
