"""Cross-seed robustness: structural invariants hold for any seed.

The headline experiments run at seed 7; these property tests regenerate
small worlds at arbitrary seeds and assert the invariants every analysis
depends on — so the reproduction is not an artifact of one lucky seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.bgp import BGPRouting
from repro.topology.asgraph import Relationship
from repro.topology.generator import InternetConfig, generate_internet
from repro.topology.routers import InterconnectKind

_SMALL = dict(n_stub=30, n_transit=4)


@st.composite
def _worlds(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return generate_internet(InternetConfig(seed=seed, **_SMALL))


class TestWorldInvariants:
    @given(_worlds())
    @settings(max_examples=8, deadline=None)
    def test_interfaces_unique_and_owned(self, internet):
        seen: set[int] = set()
        for link in internet.fabric.interconnects():
            for ip, router_id in ((link.a_ip, link.a_router_id), (link.b_ip, link.b_router_id)):
                iface = internet.fabric.interface(ip)
                assert iface is not None and iface.router_id == router_id
                key = (ip, router_id)
                assert key not in seen
                seen.add(key)

    @given(_worlds())
    @settings(max_examples=8, deadline=None)
    def test_private_links_are_31_aligned(self, internet):
        for link in internet.fabric.interconnects():
            if link.kind is InterconnectKind.PRIVATE:
                assert link.a_ip >> 1 == link.b_ip >> 1

    @given(_worlds())
    @settings(max_examples=8, deadline=None)
    def test_relationship_edges_symmetric(self, internet):
        graph = internet.graph
        for asn in graph.asns():
            for neighbor, rel in graph.neighbors(asn).items():
                assert graph.relationship(neighbor, asn) is rel.inverse()

    @given(_worlds())
    @settings(max_examples=6, deadline=None)
    def test_big_isps_reachable_from_tier1s(self, internet):
        routing = BGPRouting(internet.graph)
        level3 = internet.as_named("Level3")
        for name in ("Comcast", "ATT", "Cox", "Windstream"):
            target = internet.as_named(name)
            assert routing.as_path(level3.asn, target.asn) is not None

    @given(_worlds())
    @settings(max_examples=6, deadline=None)
    def test_every_interconnect_between_related_ases(self, internet):
        graph = internet.graph
        for link in internet.fabric.interconnects():
            assert graph.relationship(link.a_asn, link.b_asn) is not None

    @given(_worlds())
    @settings(max_examples=6, deadline=None)
    def test_client_prefixes_disjoint_from_infra(self, internet):
        for asn in list(internet.graph.asns())[:40]:
            for client_prefix in internet.client_prefixes[asn]:
                for infra_prefix in internet.infra_prefixes[asn]:
                    assert not client_prefix.contains(infra_prefix.base)
                    assert not infra_prefix.contains(client_prefix.base)
